// Package cluster is the distributed execution backend (ROADMAP item 1,
// the paper's Section 3.3 claim taken out of one process): dfworker
// processes execute fused stages and shuffle phases shipped over a
// length-prefixed columnar wire format serialized straight from
// internal/vector typed storage, while a coordinator-side Scheduler
// implements the df-facing engine surface, assigns band tasks round-robin,
// places shuffle merges where their bucket's bytes landed, and re-submits a
// lost band's lineage when a worker dies. The in-process MODIN engine
// remains the degenerate backend (Local) and the fallback for plans whose
// operators cannot cross a process boundary (opaque Go closures).
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/types"
	"repro/internal/vector"
)

// Block wire format: a dataframe serialized column-by-column through the
// vector layer's raw little-endian codec (vector.AppendWire). Layout:
//
//	u32 ncols
//	u8  declared domains ×ncols   (types.Domain as stored; Unspecified ok)
//	row-label vector              (vector wire form)
//	column labels ×ncols          (scalar value form, below)
//	column vectors ×ncols         (vector wire form)
//
// Scalar values (column labels here; plan operands, key exemplars and sort
// bounds in the gob control messages) have no raw buffer of their own:
// they travel as (domain, null, payload) triples. Composite values cannot
// cross the wire — plans producing them stay on the in-process backend.

// EncodeFrame serializes df onto buf and returns the extended buffer.
func EncodeFrame(buf []byte, df *core.DataFrame) ([]byte, error) {
	n := df.NCols()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for j := 0; j < n; j++ {
		buf = append(buf, byte(df.DeclaredDomain(j)))
	}
	var err error
	buf, err = vector.AppendWire(buf, df.RowLabels())
	if err != nil {
		return nil, fmt.Errorf("cluster: encode row labels: %w", err)
	}
	for j := 0; j < n; j++ {
		buf, err = appendValue(buf, df.ColLabels()[j])
		if err != nil {
			return nil, fmt.Errorf("cluster: encode column label %d: %w", j, err)
		}
	}
	for j := 0; j < n; j++ {
		buf, err = vector.AppendWire(buf, df.Col(j))
		if err != nil {
			return nil, fmt.Errorf("cluster: encode column %d: %w", j, err)
		}
	}
	return buf, nil
}

// DecodeFrame decodes one dataframe off buf, returning it and the
// remaining bytes. The frame gets a fresh schema-induction cache, so lazy
// typing memoizes per decoded band exactly as it does per parsed band.
func DecodeFrame(buf []byte) (*core.DataFrame, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("cluster: frame truncated (header)")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < n {
		return nil, nil, fmt.Errorf("cluster: frame truncated (domains)")
	}
	domains := make([]types.Domain, n)
	for j := 0; j < n; j++ {
		domains[j] = types.Domain(buf[j])
	}
	buf = buf[n:]
	rowLab, buf, err := vector.DecodeWire(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: decode row labels: %w", err)
	}
	colLab := make([]types.Value, n)
	for j := 0; j < n; j++ {
		colLab[j], buf, err = decodeValue(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: decode column label %d: %w", j, err)
		}
	}
	cols := make([]vector.Vector, n)
	for j := 0; j < n; j++ {
		cols[j], buf, err = vector.DecodeWire(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: decode column %d: %w", j, err)
		}
	}
	df, err := core.Build(cols, rowLab, colLab, domains, schema.NewCache())
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: rebuild frame: %w", err)
	}
	return df, buf, nil
}

// appendValue serializes one scalar: domain byte, null byte, payload.
func appendValue(buf []byte, v types.Value) ([]byte, error) {
	d := v.Domain()
	buf = append(buf, byte(d), boolByte(v.IsNull()))
	if v.IsNull() {
		return buf, nil
	}
	switch d {
	case types.Object, types.Category:
		s := v.Str()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		return append(buf, s...), nil
	case types.Int, types.Datetime:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.Int())), nil
	case types.Float:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float())), nil
	case types.Bool:
		return append(buf, boolByte(v.Bool())), nil
	default:
		return nil, fmt.Errorf("cluster: no wire form for %v value", d)
	}
}

// decodeValue is appendValue's inverse.
func decodeValue(buf []byte) (types.Value, []byte, error) {
	if len(buf) < 2 {
		return types.Value{}, nil, fmt.Errorf("cluster: value truncated")
	}
	d, isNull := types.Domain(buf[0]), buf[1] == 1
	buf = buf[2:]
	if isNull {
		return types.NullValue(d), buf, nil
	}
	switch d {
	case types.Object, types.Category:
		if len(buf) < 4 {
			return types.Value{}, nil, fmt.Errorf("cluster: value truncated (string length)")
		}
		l := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < l {
			return types.Value{}, nil, fmt.Errorf("cluster: value truncated (string)")
		}
		s := string(buf[:l])
		if d == types.Category {
			return types.CategoryValue(s), buf[l:], nil
		}
		return types.String(s), buf[l:], nil
	case types.Int, types.Datetime:
		if len(buf) < 8 {
			return types.Value{}, nil, fmt.Errorf("cluster: value truncated (int)")
		}
		x := int64(binary.LittleEndian.Uint64(buf))
		if d == types.Datetime {
			return types.DatetimeFromNanos(x), buf[8:], nil
		}
		return types.IntValue(x), buf[8:], nil
	case types.Float:
		if len(buf) < 8 {
			return types.Value{}, nil, fmt.Errorf("cluster: value truncated (float)")
		}
		return types.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(buf))), buf[8:], nil
	case types.Bool:
		if len(buf) < 1 {
			return types.Value{}, nil, fmt.Errorf("cluster: value truncated (bool)")
		}
		return types.BoolValue(buf[0] == 1), buf[1:], nil
	default:
		return types.Value{}, nil, fmt.Errorf("cluster: unknown value domain %d", d)
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ValueWire is the gob-safe form of a scalar value for control messages
// (plan operands, group-key exemplars, sort samples and bounds):
// types.Value keeps its fields unexported, so the control plane converts
// through this mirror instead of gob-encoding values directly.
type ValueWire struct {
	Dom  int
	Null bool
	I    int64
	F    float64
	B    bool
	S    string
}

// valueToWire converts a scalar to its gob-safe mirror; Composite values
// have no wire form.
func valueToWire(v types.Value) (ValueWire, error) {
	d := v.Domain()
	w := ValueWire{Dom: int(d), Null: v.IsNull()}
	if w.Null {
		return w, nil
	}
	switch d {
	case types.Object, types.Category:
		w.S = v.Str()
	case types.Int, types.Datetime:
		w.I = v.Int()
	case types.Float:
		w.F = v.Float()
	case types.Bool:
		w.B = v.Bool()
	default:
		return w, fmt.Errorf("cluster: no wire form for %v value", d)
	}
	return w, nil
}

// wireToValue is valueToWire's inverse.
func wireToValue(w ValueWire) types.Value {
	d := types.Domain(w.Dom)
	if w.Null {
		return types.NullValue(d)
	}
	switch d {
	case types.Category:
		return types.CategoryValue(w.S)
	case types.Int:
		return types.IntValue(w.I)
	case types.Datetime:
		return types.DatetimeFromNanos(w.I)
	case types.Float:
		return types.FloatValue(w.F)
	case types.Bool:
		return types.BoolValue(w.B)
	default:
		return types.String(w.S)
	}
}

// tuplesToWire converts a slice of key tuples (exemplars, samples, bounds).
func tuplesToWire(tuples [][]types.Value) ([][]ValueWire, error) {
	out := make([][]ValueWire, len(tuples))
	for i, t := range tuples {
		out[i] = make([]ValueWire, len(t))
		for k, v := range t {
			w, err := valueToWire(v)
			if err != nil {
				return nil, err
			}
			out[i][k] = w
		}
	}
	return out, nil
}

// wireToTuples is tuplesToWire's inverse.
func wireToTuples(ws [][]ValueWire) [][]types.Value {
	out := make([][]types.Value, len(ws))
	for i, t := range ws {
		out[i] = make([]types.Value, len(t))
		for k, w := range t {
			out[i][k] = wireToValue(w)
		}
	}
	return out
}

// frameBytes estimates a frame's wire footprint without encoding it —
// workers report per-bucket routed sizes through this, and the coordinator
// places each merge on the worker holding the most bytes of its bucket.
func frameBytes(df *core.DataFrame) int64 {
	var total int64
	for j := 0; j < df.NCols(); j++ {
		total += vectorBytes(df.Col(j))
	}
	total += vectorBytes(df.RowLabels())
	return total
}

func vectorBytes(v vector.Vector) int64 {
	switch t := v.(type) {
	case *vector.Object:
		var b int64
		for _, s := range t.RawData() {
			b += int64(len(s)) + 4
		}
		return b
	case *vector.Bool:
		return int64(t.Len())
	case *vector.Dict:
		var b int64 = int64(t.Len()) * 4
		for _, s := range t.Categories() {
			b += int64(len(s)) + 4
		}
		return b
	default:
		return int64(v.Len()) * 8
	}
}

package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"time"
)

// Control protocol: length-prefixed frames over TCP. Each message is
//
//	u32 payload length · u8 kind · gob payload
//
// and every connection carries strictly serial request/response pairs (the
// coordinator parallelizes across workers, not across messages on one
// conn; peer fetches open their own connections). Blocks travel inside the
// gob payloads as []byte fields already rendered through the columnar
// codec (wire.go), so gob never sees a cell.

// Request kinds.
const (
	mPing byte = iota
	mPrepare
	mRunBands
	mPartition
	mMerge
	mFetch
	mRelease
)

// Response status bytes.
const (
	stOK byte = iota
	stErr
	stFetchErr // a merge could not fetch a peer's piece; payload names the peer
)

// PrepareReq installs a query's plan on a worker.
type PrepareReq struct {
	QID  string
	Plan PlanSpec
}

// BandTask names one band a worker must produce: a byte range of the
// plan's scan source, or an inline block for frame sources.
type BandTask struct {
	Band  int
	Range BandRange
	Block []byte
}

// RunBandsReq runs the plan's pre-shuffle stage for the listed bands.
type RunBandsReq struct {
	QID   string
	Bands []BandTask
}

// GroupStatWire is a band's group-key stat (modin.GroupBandStat) in
// gob-safe form.
type GroupStatWire struct {
	Hashes    []uint64
	Exemplars [][]ValueWire
	Counts    []int64
}

// BandResult is one band's stage output: the chained block itself for
// plans without a shuffle, or the band's shuffle summary. Group bands route
// themselves the moment they run (bucket = key hash % plan.Buckets, a pure
// function of the key), so their result also reports the per-bucket routed
// piece sizes the coordinator needs for merge placement — there is no
// separate partition RPC on the group path.
type BandResult struct {
	Band  int
	Rows  int
	Block []byte
	Group *GroupStatWire
	Sort  [][]ValueWire
	Sizes []int64
}

// RunBandsResp returns the bands' results.
type RunBandsResp struct {
	Results []BandResult
}

// PartitionReq routes the listed (already-run) sort bands into buckets by
// the folded range bounds. Group bands never see this request — they route
// incrementally at band time by stable key hash.
type PartitionReq struct {
	QID     string
	Bands   []int
	Buckets int
	Bounds  [][]ValueWire
}

// PartitionResp reports per-band, per-bucket routed piece sizes in bytes —
// the signal the coordinator uses for locality-aware merge placement.
type PartitionResp struct {
	Sizes map[int]map[int]int64
}

// PieceRef locates one routed piece: band it came from and the address of
// the worker holding it ("" = the merge worker itself).
type PieceRef struct {
	Band int
	Addr string
}

// MergeReq merges one bucket's routed pieces (in band order); sort merges
// also apply the plan's post-shuffle chain (group merges leave it to the
// coordinator, which applies it after the global order restore). Ranks
// carries the group routing fold's ascending global first-appearance ranks
// for this bucket — count validation on the worker, order repair at the
// coordinator — and Heavy requests the parallel heavy-bucket merge.
type MergeReq struct {
	QID    string
	Bucket int
	Pieces []PieceRef
	Ranks  []int64
	Heavy  bool
}

// MergeResp returns the merged bucket block.
type MergeResp struct {
	Block []byte
	Rows  int
}

// FetchReq asks a worker for one routed piece (peer-to-peer, during a
// remote merge).
type FetchReq struct {
	QID    string
	Band   int
	Bucket int
}

// FetchResp returns the piece block.
type FetchResp struct {
	Block []byte
}

// ReleaseReq drops a query's worker-side state.
type ReleaseReq struct {
	QID string
}

// emptyResp is the payload of bodyless acks.
type emptyResp struct{ OK bool }

// fetchErrPayload names the peer whose piece could not be fetched, so the
// coordinator can probe exactly that worker instead of guessing.
type fetchErrPayload struct {
	Addr string
	Msg  string
}

// writeMsg frames and writes one message.
func writeMsg(w io.Writer, kind byte, payload any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return fmt.Errorf("cluster: encode message %d: %w", kind, err)
	}
	head := make([]byte, 5)
	binary.LittleEndian.PutUint32(head, uint32(buf.Len()))
	head[4] = kind
	if _, err := w.Write(head); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readMsg reads one framed message, returning its kind and payload bytes.
func readMsg(r io.Reader) (byte, []byte, error) {
	head := make([]byte, 5)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head)
	const maxMsg = 1 << 31
	if n > maxMsg {
		return 0, nil, fmt.Errorf("cluster: message of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return head[4], payload, nil
}

// decodePayload gob-decodes a message payload.
func decodePayload(payload []byte, into any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(into)
}

// fetchError marks a merge failure caused by an unreachable piece holder;
// the coordinator treats it as that worker's infrastructure failure, not
// the query's.
type fetchError struct {
	addr string
	msg  string
}

func (e *fetchError) Error() string {
	return fmt.Sprintf("cluster: fetch from %s: %s", e.addr, e.msg)
}

// call performs one serial request/response exchange on conn with an
// absolute deadline, decoding the response into resp (which may be nil for
// ack-only calls). Application errors come back as remoteError; transport
// problems as raw errors the caller maps to worker failures.
func call(conn net.Conn, timeout time.Duration, kind byte, req any, resp any) error {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
		defer conn.SetDeadline(time.Time{})
	}
	if err := writeMsg(conn, kind, req); err != nil {
		return err
	}
	status, payload, err := readMsg(conn)
	if err != nil {
		return err
	}
	switch status {
	case stOK:
		if resp == nil {
			return nil
		}
		return decodePayload(payload, resp)
	case stFetchErr:
		var fe fetchErrPayload
		if err := decodePayload(payload, &fe); err != nil {
			return err
		}
		return &fetchError{addr: fe.Addr, msg: fe.Msg}
	default:
		var msg string
		if err := decodePayload(payload, &msg); err != nil {
			return err
		}
		return &remoteError{msg: msg}
	}
}

// remoteError is an application-level failure reported by a worker (the
// query itself failed there, the worker is healthy).
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return e.msg }

package cluster

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/vector"
)

// Plan shipping. Go closures cannot cross a process boundary, so the
// distributable plan family is the closure-free subset the streaming
// engine fuses anyway: a linear chain
//
//	(Scan | Source) → {Selection(Where) | Projection | Rename}* →
//	  [GroupBy | Sort] → {Selection(Where) | Projection | Rename}*
//
// rendered into a PlanSpec of pure data. Everything else — opaque
// predicates, Map closures, joins, unions, windows, composite aggregates —
// declines extraction and runs on the coordinator's in-process engine
// instead (the Scheduler's fallback), which keeps the df surface complete
// while the hot streaming shapes distribute.

// Source kinds.
const (
	srcScanPath byte = iota // worker re-opens Path and section-reads its band
	srcScanData             // coordinator ships the input bytes in Prepare
	srcFrame                // coordinator ships each band as an inline block
)

// Op kinds.
const (
	opSelect byte = iota
	opProject
	opRename
)

// PlanSpec is a shipped stage plan: one source, a pre-shuffle chain, at
// most one shuffle, and a post-shuffle chain applied to merged buckets.
// Buckets is the shuffle's global bucket count (set by the coordinator to
// the live worker count before Prepare); group bands use it to route
// themselves by key hash without waiting for any fold.
type PlanSpec struct {
	Source  SourceSpec
	Buckets int
	Pre     []OpSpec
	Group   *GroupSpecWire
	Sort    *SortSpecWire
	Post    []OpSpec
}

// SourceSpec describes where a band's rows come from.
type SourceSpec struct {
	Kind     byte
	Path     string   // srcScanPath
	Data     []byte   // srcScanData
	Comma    byte     // scan kinds: single-byte field delimiter
	Columns  []string // scan kinds: header column labels (nil = positional)
	BandRows int      // scan kinds: morsel size used for splitting
}

// OpSpec is one closure-free chain operator.
type OpSpec struct {
	Kind  byte
	Terms []TermSpec // opSelect
	Cols  []string   // opProject
	From  []string   // opRename, paired with To
	To    []string
}

// TermSpec is one structured Where conjunct in wire form.
type TermSpec struct {
	Col     string
	Op      int
	Operand ValueWire
}

// GroupSpecWire mirrors expr.GroupBySpec.
type GroupSpecWire struct {
	Keys     []string
	Aggs     []AggWire
	AsLabels bool
}

// AggWire mirrors expr.AggSpec.
type AggWire struct {
	Col string
	Agg int
	As  string
}

// SortSpecWire mirrors the algebra Sort node's ordering.
type SortSpecWire struct {
	Keys     []SortKeyWire
	ByLabels bool
}

// SortKeyWire mirrors expr.SortKey.
type SortKeyWire struct {
	Col  string
	Desc bool
}

// planInfo is the coordinator-side result of extraction: the spec plus the
// typed handles the coordinator itself needs (the scan for splitting, the
// source frame for banding, the rebuilt shuffle nodes for folding).
type planInfo struct {
	spec   PlanSpec
	scan   *algebra.Scan
	source *core.DataFrame
	group  *expr.GroupBySpec
	sortN  *algebra.Sort
}

// extractPlan renders n into a shippable PlanSpec. A non-empty reason means
// the plan falls outside the closure-free subset; the reason names the
// first disqualifying operator (the string the scheduler's fallback stats
// and Explain surface, so "why didn't this distribute?" has an answer).
func extractPlan(n algebra.Node) (info *planInfo, reason string) {
	info = &planInfo{}
	var post, pre []OpSpec
	segment := &post
	cur := n
walk:
	for {
		switch node := cur.(type) {
		case *algebra.Selection:
			op, ok := selectOp(node)
			if !ok {
				return nil, "opaque closure"
			}
			*segment = append(*segment, op)
			cur = node.Input
		case *algebra.Projection:
			*segment = append(*segment, OpSpec{Kind: opProject, Cols: append([]string(nil), node.Cols...)})
			cur = node.Input
		case *algebra.Rename:
			*segment = append(*segment, renameOp(node.Mapping))
			cur = node.Input
		case *algebra.GroupBy:
			if segment == &pre { // at most one shuffle, nearest the leaf
				return nil, "double-shuffle"
			}
			gw, ok := groupWire(node.Spec)
			if !ok {
				return nil, "composite aggregate"
			}
			info.spec.Group = gw
			spec := node.Spec
			info.group = &spec
			segment = &pre
			cur = node.Input
		case *algebra.Sort:
			if segment == &pre {
				return nil, "double-shuffle"
			}
			info.spec.Sort = sortWire(node)
			info.sortN = node
			segment = &pre
			cur = node.Input
		case *algebra.Scan:
			src, ok := scanSource(node)
			if !ok {
				return nil, "unshippable scan"
			}
			info.spec.Source = src
			info.scan = node
			break walk
		case *algebra.Source:
			info.spec.Source = SourceSpec{Kind: srcFrame}
			info.source = node.DF
			break walk
		case *algebra.Join:
			return nil, "join"
		case *algebra.Window:
			return nil, "window"
		case *algebra.Map:
			return nil, "opaque closure"
		case *algebra.Union:
			return nil, "union"
		default:
			return nil, "unshippable operator"
		}
	}
	// The chains were collected root-first; execution runs leaf-first.
	reverseOps(pre)
	reverseOps(post)
	info.spec.Pre = pre
	info.spec.Post = post
	if info.spec.Group == nil && info.spec.Sort == nil {
		// No shuffle: the whole chain is the per-band stage.
		info.spec.Pre = post
		info.spec.Post = nil
	}
	return info, ""
}

// selectOp renders a structured selection; opaque predicates decline.
func selectOp(node *algebra.Selection) (OpSpec, bool) {
	if node.Where == nil {
		return OpSpec{}, false
	}
	terms := make([]TermSpec, len(node.Where.Terms))
	for i, t := range node.Where.Terms {
		w, err := valueToWire(t.Operand)
		if err != nil {
			return OpSpec{}, false
		}
		terms[i] = TermSpec{Col: t.Col, Op: int(t.Op), Operand: w}
	}
	return OpSpec{Kind: opSelect, Terms: terms}, true
}

// renameOp renders a rename mapping as sorted pairs, so the spec is
// deterministic across map iteration orders.
func renameOp(mapping map[string]string) OpSpec {
	from := make([]string, 0, len(mapping))
	for k := range mapping {
		from = append(from, k)
	}
	sort.Strings(from)
	to := make([]string, len(from))
	for i, f := range from {
		to[i] = mapping[f]
	}
	return OpSpec{Kind: opRename, From: from, To: to}
}

// groupWire renders a group spec; composite aggregates (Collect) produce
// values with no wire form, so they decline.
func groupWire(spec expr.GroupBySpec) (*GroupSpecWire, bool) {
	gw := &GroupSpecWire{Keys: append([]string(nil), spec.Keys...), AsLabels: spec.AsLabels}
	for _, a := range spec.Aggs {
		if a.Agg == expr.AggCollect {
			return nil, false
		}
		gw.Aggs = append(gw.Aggs, AggWire{Col: a.Col, Agg: int(a.Agg), As: a.As})
	}
	return gw, true
}

// sortWire renders a sort node.
func sortWire(node *algebra.Sort) *SortSpecWire {
	sw := &SortSpecWire{ByLabels: node.ByLabels}
	for _, k := range node.Order {
		sw.Keys = append(sw.Keys, SortKeyWire{Col: k.Col, Desc: k.Desc})
	}
	return sw
}

// scanSource renders a scan leaf. Distributable scans have a re-openable
// path or inline bytes, a single-byte delimiter, and a probed header (the
// worker names parsed columns from the shipped labels).
func scanSource(node *algebra.Scan) (SourceSpec, bool) {
	if node.Options.Comma >= 0x80 || node.Options.InduceNow || !node.Options.Header || len(node.Columns) == 0 {
		return SourceSpec{}, false
	}
	src := SourceSpec{
		Comma:    byte(node.Options.Comma),
		Columns:  append([]string(nil), node.Columns...),
		BandRows: node.BandRows,
	}
	switch {
	case node.Path != "":
		src.Kind = srcScanPath
		src.Path = node.Path
	case node.Data != nil:
		src.Kind = srcScanData
		src.Data = node.Data
	default:
		return SourceSpec{}, false
	}
	return src, true
}

func reverseOps(ops []OpSpec) {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
}

// groupSpec rebuilds the expr form of a shipped group spec (worker side).
func (g *GroupSpecWire) groupSpec() expr.GroupBySpec {
	spec := expr.GroupBySpec{Keys: g.Keys, AsLabels: g.AsLabels}
	for _, a := range g.Aggs {
		spec.Aggs = append(spec.Aggs, expr.AggSpec{Col: a.Col, Agg: expr.AggKind(a.Agg), As: a.As})
	}
	return spec
}

// sortNode rebuilds the algebra form of a shipped sort (worker side; the
// shared modin merge helpers take the node).
func (s *SortSpecWire) sortNode() *algebra.Sort {
	node := &algebra.Sort{ByLabels: s.ByLabels}
	for _, k := range s.Keys {
		node.Order = append(node.Order, expr.SortKey{Col: k.Col, Desc: k.Desc})
	}
	return node
}

// applyOps runs a shipped chain over one frame through the same typed
// kernels the in-process engine fuses (SelectWhereView keeps selections
// zero-copy until the stage-exit compaction).
func applyOps(df *core.DataFrame, ops []OpSpec) (*core.DataFrame, error) {
	var err error
	for _, op := range ops {
		switch op.Kind {
		case opSelect:
			w := &expr.Where{Terms: make([]expr.WhereTerm, len(op.Terms))}
			for i, t := range op.Terms {
				w.Terms[i] = expr.WhereTerm{Col: t.Col, Op: vector.CmpOp(t.Op), Operand: wireToValue(t.Operand)}
			}
			df, err = algebra.SelectWhereView(df, w)
		case opProject:
			df, err = algebra.Project(df, op.Cols)
		case opRename:
			mapping := make(map[string]string, len(op.From))
			for i, f := range op.From {
				mapping[f] = op.To[i]
			}
			df, err = algebra.RenameFrame(df, mapping)
		default:
			return nil, fmt.Errorf("cluster: unknown op kind %d", op.Kind)
		}
		if err != nil {
			return nil, err
		}
	}
	return df, nil
}

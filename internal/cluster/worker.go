package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"sync"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/modin"
	"repro/internal/schema"
	"repro/internal/vector"
)

// Worker executes shipped stage plans: it parses or decodes bands, runs the
// pre-shuffle chain through the same typed kernels the in-process engine
// uses, routes rows with the coordinator's folded tables, merges buckets
// with the shared modin merge helpers, and serves routed pieces to peer
// workers. One process hosts one Worker; the dfworker command is a thin
// main around it.
type Worker struct {
	pool *exec.Pool
	ls   net.Listener

	mu      sync.Mutex
	queries map[string]*workerQuery
	peers   map[string]*peerLink
	conns   map[net.Conn]struct{}
	closed  bool
}

// peerLink is one cached worker-to-worker connection; its mutex serializes
// the fetches of concurrent merge tasks onto the serial wire protocol.
type peerLink struct {
	mu   sync.Mutex
	conn net.Conn
}

// workerQuery is one query's worker-side state. Sort band frames live here
// between RunBands and Partition (group bands route themselves inside
// RunBands and hold nothing but pieces); routed pieces stay until Release
// so a retried merge can re-fetch them.
type workerQuery struct {
	mu     sync.Mutex
	plan   *PlanSpec
	bands  map[int]*core.DataFrame
	pieces map[[2]int]*core.DataFrame
}

// NewWorker starts a worker listening on addr (e.g. "127.0.0.1:0") and
// serving connections until Close.
func NewWorker(addr string) (*Worker, error) {
	ls, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		pool:    exec.Default,
		ls:      ls,
		queries: make(map[string]*workerQuery),
		peers:   make(map[string]*peerLink),
		conns:   make(map[net.Conn]struct{}),
	}
	go w.serve()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ls.Addr().String() }

// Close stops the worker, severing accepted connections so peers and the
// coordinator observe the loss immediately (also what lets tests simulate
// a worker death in-process), and drops all query state.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	for _, p := range w.peers {
		if p.conn != nil {
			p.conn.Close()
		}
	}
	for c := range w.conns {
		c.Close()
	}
	w.peers = map[string]*peerLink{}
	w.conns = map[net.Conn]struct{}{}
	w.queries = map[string]*workerQuery{}
	w.mu.Unlock()
	return w.ls.Close()
}

func (w *Worker) serve() {
	for {
		conn, err := w.ls.Accept()
		if err != nil {
			return
		}
		go w.serveConn(conn)
	}
}

// serveConn handles one connection's serial request stream.
func (w *Worker) serveConn(conn net.Conn) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		conn.Close()
		return
	}
	w.conns[conn] = struct{}{}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
		conn.Close()
	}()
	for {
		kind, payload, err := readMsg(conn)
		if err != nil {
			return
		}
		if err := w.dispatch(conn, kind, payload); err != nil {
			return
		}
	}
}

// dispatch decodes, executes and responds to one request. Application
// failures are reported in-band; only transport failures return an error
// (dropping the connection).
func (w *Worker) dispatch(conn net.Conn, kind byte, payload []byte) error {
	resp, err := w.handle(kind, payload)
	if err == nil {
		return writeMsg(conn, stOK, resp)
	}
	var fe *fetchError
	if asFetchError(err, &fe) {
		return writeMsg(conn, stFetchErr, fetchErrPayload{Addr: fe.addr, Msg: fe.msg})
	}
	return writeMsg(conn, stErr, err.Error())
}

func asFetchError(err error, out **fetchError) bool {
	fe, ok := err.(*fetchError)
	if ok {
		*out = fe
	}
	return ok
}

func (w *Worker) handle(kind byte, payload []byte) (any, error) {
	switch kind {
	case mPing:
		return emptyResp{OK: true}, nil
	case mPrepare:
		var req PrepareReq
		if err := decodePayload(payload, &req); err != nil {
			return nil, err
		}
		return w.prepare(&req)
	case mRunBands:
		var req RunBandsReq
		if err := decodePayload(payload, &req); err != nil {
			return nil, err
		}
		return w.runBands(&req)
	case mPartition:
		var req PartitionReq
		if err := decodePayload(payload, &req); err != nil {
			return nil, err
		}
		return w.partition(&req)
	case mMerge:
		var req MergeReq
		if err := decodePayload(payload, &req); err != nil {
			return nil, err
		}
		return w.merge(&req)
	case mFetch:
		var req FetchReq
		if err := decodePayload(payload, &req); err != nil {
			return nil, err
		}
		return w.fetch(&req)
	case mRelease:
		var req ReleaseReq
		if err := decodePayload(payload, &req); err != nil {
			return nil, err
		}
		w.mu.Lock()
		delete(w.queries, req.QID)
		w.mu.Unlock()
		return emptyResp{OK: true}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown request kind %d", kind)
	}
}

// query returns (creating if create) the state for qid.
func (w *Worker) query(qid string, create bool) (*workerQuery, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	q := w.queries[qid]
	if q == nil {
		if !create {
			return nil, fmt.Errorf("cluster: unknown query %q", qid)
		}
		q = &workerQuery{
			bands:  make(map[int]*core.DataFrame),
			pieces: make(map[[2]int]*core.DataFrame),
		}
		w.queries[qid] = q
	}
	return q, nil
}

func (w *Worker) prepare(req *PrepareReq) (any, error) {
	q, err := w.query(req.QID, true)
	if err != nil {
		return nil, err
	}
	plan := req.Plan
	q.mu.Lock()
	q.plan = &plan
	q.mu.Unlock()
	return emptyResp{OK: true}, nil
}

// runBands executes the pre-shuffle stage for the requested bands in
// parallel on the worker's pool.
func (w *Worker) runBands(req *RunBandsReq) (any, error) {
	q, err := w.query(req.QID, false)
	if err != nil {
		return nil, err
	}
	q.mu.Lock()
	plan := q.plan
	q.mu.Unlock()
	if plan == nil {
		return nil, fmt.Errorf("cluster: query %q has no plan", req.QID)
	}
	results := make([]BandResult, len(req.Bands))
	err = w.pool.ForEach(len(req.Bands), func(i int) error {
		r, err := w.runBand(q, plan, &req.Bands[i])
		if err != nil {
			return fmt.Errorf("cluster: band %d: %w", req.Bands[i].Band, err)
		}
		results[i] = *r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RunBandsResp{Results: results}, nil
}

// runBand produces one band: materialize its rows with global labels, run
// the shipped chain, then either return the block (no shuffle) or hold the
// frame and report its shuffle summary.
func (w *Worker) runBand(q *workerQuery, plan *PlanSpec, task *BandTask) (*BandResult, error) {
	df, err := w.buildBand(plan, task)
	if err != nil {
		return nil, err
	}
	df, err = applyOps(df, plan.Pre)
	if err != nil {
		return nil, err
	}
	// One coalescing copy at stage exit, exactly like the fused local chain,
	// so summaries and blocks are built over compact storage.
	df = df.Compact()
	res := &BandResult{Band: task.Band, Rows: df.NRows()}
	switch {
	case plan.Group != nil:
		sum, err := algebra.SummarizeGroupKeys(df, plan.Group.Keys)
		if err != nil {
			return nil, err
		}
		stat := modin.GroupStatOf(sum)
		ex, err := tuplesToWire(stat.Exemplars)
		if err != nil {
			return nil, err
		}
		res.Group = &GroupStatWire{Hashes: stat.Hashes, Exemplars: ex, Counts: stat.Counts}
		// Incremental routing: bucket = key hash % buckets is identical in
		// every band, so this band partitions from its own summary right here
		// — no round trip for a routing table, and the band frame (plus its
		// O(rows) ordinal table) dies at band scope instead of waiting for a
		// global plan. splitRows takes owned copies, releasing df's storage.
		if plan.Buckets <= 0 {
			return nil, fmt.Errorf("cluster: group plan shipped without a bucket count")
		}
		assign := make([]int, len(sum.Ordinals))
		for r, d := range sum.Ordinals {
			assign[r] = int(sum.Hashes[d] % uint64(plan.Buckets))
		}
		views, err := splitRows(df, assign, plan.Buckets)
		if err != nil {
			return nil, err
		}
		res.Sizes = make([]int64, plan.Buckets)
		q.mu.Lock()
		for b, piece := range views {
			q.pieces[[2]int{task.Band, b}] = piece
			res.Sizes[b] = frameBytes(piece)
		}
		q.mu.Unlock()
	case plan.Sort != nil:
		samples, err := modin.SampleSortKeys(df, plan.Sort.sortNode())
		if err != nil {
			return nil, err
		}
		res.Sort, err = tuplesToWire(samples)
		if err != nil {
			return nil, err
		}
		q.mu.Lock()
		q.bands[task.Band] = df
		q.mu.Unlock()
	default:
		res.Block, err = EncodeFrame(nil, df)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// buildBand materializes one band's rows — re-parsing its scan lineage or
// decoding its shipped block — and assigns its global row labels before any
// operator runs, matching the local streaming scan exactly.
func (w *Worker) buildBand(plan *PlanSpec, task *BandTask) (*core.DataFrame, error) {
	src := &plan.Source
	if src.Kind == srcFrame {
		df, rest, err := DecodeFrame(task.Block)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("cluster: %d trailing bytes after band block", len(rest))
		}
		return df, nil
	}
	r, err := openRange(src, task.Range)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	cur, err := core.NewCSVCursor(r, core.CSVOptions{Comma: rune(src.Comma), Header: false})
	if err != nil {
		return nil, err
	}
	band, err := cur.NextBand(task.Range.Rows)
	if err == io.EOF || (err == nil && band.NRows() != task.Range.Rows) {
		return nil, fmt.Errorf("cluster: band lineage yielded fewer rows than split planned")
	}
	if err != nil {
		return nil, err
	}
	if src.Columns != nil {
		// The split ships byte ranges without headers; name the parsed
		// columns from the probed header labels.
		band, err = core.New(src.Columns, band.Columns())
		if err != nil {
			return nil, err
		}
	}
	band, err = band.WithRowLabels(vector.Range(task.Range.Row, band.NRows()))
	if err != nil {
		return nil, err
	}
	return band.WithCache(schema.NewCache()), nil
}

// openRange opens one scan band's byte range.
func openRange(src *SourceSpec, rng BandRange) (io.ReadCloser, error) {
	switch src.Kind {
	case srcScanData:
		if rng.Offset+rng.Length > int64(len(src.Data)) {
			return nil, fmt.Errorf("cluster: band range beyond shipped input")
		}
		return io.NopCloser(bytes.NewReader(src.Data[rng.Offset : rng.Offset+rng.Length])), nil
	case srcScanPath:
		f, err := os.Open(src.Path)
		if err != nil {
			return nil, err
		}
		return struct {
			io.Reader
			io.Closer
		}{io.NewSectionReader(f, rng.Offset, rng.Length), f}, nil
	default:
		return nil, fmt.Errorf("cluster: source kind %d has no byte ranges", src.Kind)
	}
}

// partition routes the listed sort bands into buckets by the folded range
// bounds and reports per-bucket piece sizes. Sort pieces are contiguous
// slices that together cover exactly the sorted copy, so retaining them
// retains no dead rows. Group bands never arrive here — they routed
// themselves in runBand.
func (w *Worker) partition(req *PartitionReq) (any, error) {
	q, err := w.query(req.QID, false)
	if err != nil {
		return nil, err
	}
	q.mu.Lock()
	plan := q.plan
	q.mu.Unlock()
	if plan == nil {
		return nil, fmt.Errorf("cluster: query %q has no plan", req.QID)
	}
	sizes := make(map[int]map[int]int64, len(req.Bands))
	var mu sync.Mutex
	err = w.pool.ForEach(len(req.Bands), func(i int) error {
		band := req.Bands[i]
		q.mu.Lock()
		df := q.bands[band]
		q.mu.Unlock()
		if df == nil {
			return fmt.Errorf("cluster: band %d not resident for partition", band)
		}
		if plan.Sort == nil {
			return fmt.Errorf("cluster: plan has no range shuffle to partition")
		}
		views, err := modin.PartitionSortedBand(df, plan.Sort.sortNode(), wireToTuples(req.Bounds), req.Buckets)
		if err != nil {
			return err
		}
		bandSizes := make(map[int]int64, req.Buckets)
		q.mu.Lock()
		for b, piece := range views {
			q.pieces[[2]int{band, b}] = piece
			bandSizes[b] = frameBytes(piece)
		}
		delete(q.bands, band)
		q.mu.Unlock()
		mu.Lock()
		sizes[band] = bandSizes
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &PartitionResp{Sizes: sizes}, nil
}

// merge folds one bucket's routed pieces — fetching remote ones from their
// holders — through the shared modin merge helpers, then applies the
// post-shuffle chain.
func (w *Worker) merge(req *MergeReq) (any, error) {
	q, err := w.query(req.QID, false)
	if err != nil {
		return nil, err
	}
	q.mu.Lock()
	plan := q.plan
	q.mu.Unlock()
	if plan == nil {
		return nil, fmt.Errorf("cluster: query %q has no plan", req.QID)
	}
	frames := make([]*core.DataFrame, len(req.Pieces))
	err = w.pool.ForEach(len(req.Pieces), func(i int) error {
		ref := req.Pieces[i]
		if ref.Addr == "" {
			q.mu.Lock()
			df := q.pieces[[2]int{ref.Band, req.Bucket}]
			q.mu.Unlock()
			if df == nil {
				return fmt.Errorf("cluster: piece band=%d bucket=%d not resident", ref.Band, req.Bucket)
			}
			frames[i] = df
			return nil
		}
		df, err := w.fetchPeer(ref.Addr, req.QID, ref.Band, req.Bucket)
		if err != nil {
			return err
		}
		frames[i] = df
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out *core.DataFrame
	switch {
	case plan.Group != nil:
		// A single-bucket view of the shared merge: this bucket's rank list
		// validates the group count here, while the coordinator keeps the
		// full routing for the global order restore.
		routing := &modin.GroupRouting{Ranks: [][]int64{req.Ranks}}
		if req.Heavy {
			routing.Heavy = []bool{true}
		}
		out, err = modin.MergeGroupBucket(w.pool, frames, plan.Group.groupSpec(), routing, 0)
	case plan.Sort != nil:
		out, err = modin.MergeSortBucket(frames, plan.Sort.sortNode())
	default:
		return nil, fmt.Errorf("cluster: plan has no shuffle to merge")
	}
	if err != nil {
		return nil, err
	}
	if plan.Group == nil {
		// Group buckets keep their rows rank-aligned: the post-shuffle chain
		// could drop rows, so the coordinator applies it after the restore.
		out, err = applyOps(out, plan.Post)
		if err != nil {
			return nil, err
		}
	}
	out = out.Compact()
	block, err := EncodeFrame(nil, out)
	if err != nil {
		return nil, err
	}
	return &MergeResp{Block: block, Rows: out.NRows()}, nil
}

// fetch serves one resident routed piece to a peer.
func (w *Worker) fetch(req *FetchReq) (any, error) {
	q, err := w.query(req.QID, false)
	if err != nil {
		return nil, err
	}
	q.mu.Lock()
	df := q.pieces[[2]int{req.Band, req.Bucket}]
	q.mu.Unlock()
	if df == nil {
		return nil, fmt.Errorf("cluster: piece band=%d bucket=%d not resident", req.Band, req.Bucket)
	}
	block, err := EncodeFrame(nil, df)
	if err != nil {
		return nil, err
	}
	return &FetchResp{Block: block}, nil
}

// fetchPeer retrieves one routed piece from the worker at addr. Transport
// failures surface as fetchError so the coordinator can attribute them to
// the piece holder rather than this worker.
func (w *Worker) fetchPeer(addr, qid string, band, bucket int) (*core.DataFrame, error) {
	link, err := w.peerLink(addr)
	if err != nil {
		return nil, &fetchError{addr: addr, msg: err.Error()}
	}
	link.mu.Lock()
	var resp FetchResp
	err = call(link.conn, 0, mFetch, &FetchReq{QID: qid, Band: band, Bucket: bucket}, &resp)
	link.mu.Unlock()
	if err != nil {
		w.dropPeer(addr, link)
		if _, ok := err.(*remoteError); ok {
			return nil, err
		}
		return nil, &fetchError{addr: addr, msg: err.Error()}
	}
	df, rest, err := DecodeFrame(resp.Block)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after piece block", len(rest))
	}
	return df, nil
}

// peerLink returns a cached connection to a peer worker, dialing on first
// use. The link's mutex serializes concurrent fetches; merges of different
// buckets queue on it, which keeps the peer protocol trivial.
func (w *Worker) peerLink(addr string) (*peerLink, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("worker closed")
	}
	if p := w.peers[addr]; p != nil {
		return p, nil
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &peerLink{conn: c}
	w.peers[addr] = p
	return p, nil
}

// dropPeer discards a peer connection after a failed exchange.
func (w *Worker) dropPeer(addr string, link *peerLink) {
	link.conn.Close()
	w.mu.Lock()
	if w.peers[addr] == link {
		delete(w.peers, addr)
	}
	w.mu.Unlock()
}

// splitRows mirrors partition.SplitRows without importing the partition
// package (avoiding a cluster→partition coupling for one helper): it
// splits df's rows into buckets by assignment, preserving order.
func splitRows(df *core.DataFrame, assign []int, buckets int) ([]*core.DataFrame, error) {
	idx := make([][]int, buckets)
	for i, b := range assign {
		if b < 0 || b >= buckets {
			return nil, fmt.Errorf("cluster: row %d assigned to bucket %d of %d", i, b, buckets)
		}
		idx[b] = append(idx[b], i)
	}
	out := make([]*core.DataFrame, buckets)
	for b := range out {
		out[b] = df.TakeRows(idx[b])
	}
	return out, nil
}

package algebra

import (
	"math"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// Dictionary-aware GROUPBY: when the single key column is Dict-typed and
// every input frame shares one category table, group identity IS the int32
// code — no hashing, no boxed exemplars, no collision probes. Aggregates
// accumulate into flat per-group slices (float64 sums, int64 counts, typed
// min/max), and the output key column reuses the shared dictionary, so the
// whole aggregation allocates O(groups + aggs), not O(rows). Results are
// bit-identical to the GroupPartial hash path: groups emit in
// first-appearance order and each aggregate reproduces Accumulator.Result's
// exact typing (SUM always Float, MEAN null on empty, MIN/MAX keeping the
// column's domain).

// dictGroupEnabled gates the code path; tests flip it to compare against the
// hash path on identical inputs.
var dictGroupEnabled = true

// SetDictGroupForTesting enables or disables the dictionary grouping fast
// path and returns the restore function. Not for production use.
func SetDictGroupForTesting(on bool) (restore func()) {
	old := dictGroupEnabled
	dictGroupEnabled = on
	return func() { dictGroupEnabled = old }
}

// dictAggPlan is the per-frame typed access plan for one aggregate column.
type dictAggPlan struct {
	kind    expr.AggKind
	isFloat bool // aggregate column storage type; false = int64
	hasCol  bool
	fdata   []float64
	idata   []int64
	nulls   []bool
	idx     []int
}

// dictGroupState accumulates one aggregate across all groups.
type dictGroupState struct {
	kind    expr.AggKind
	isFloat bool
	hasCol  bool
	counts  []int64   // non-null values seen
	sums    []float64 // sum / mean
	minI    []int64
	maxI    []int64
	minF    []float64
	maxF    []float64
}

func (s *dictGroupState) grow() {
	s.counts = append(s.counts, 0)
	switch s.kind {
	case expr.AggSum, expr.AggMean:
		s.sums = append(s.sums, 0)
	case expr.AggMin, expr.AggMax:
		if s.isFloat {
			s.minF = append(s.minF, 0)
			s.maxF = append(s.maxF, 0)
		} else {
			s.minI = append(s.minI, 0)
			s.maxI = append(s.maxI, 0)
		}
	}
}

// dictGroupSupported reports whether every aggregate kind has a typed
// accumulation path.
// DictGroupSupported reports whether the spec's SHAPE admits the dictionary
// fast path (single unsorted key, decomposable agg kinds). The per-frame
// storage checks still happen inside DictGroupFrames; planners use this for
// strategy description only.
func DictGroupSupported(spec expr.GroupBySpec) bool {
	return dictGroupSupported(spec) && dictGroupEnabled
}

func dictGroupSupported(spec expr.GroupBySpec) bool {
	if spec.Sorted || len(spec.Keys) != 1 {
		return false
	}
	for _, a := range spec.Aggs {
		switch a.Agg {
		case expr.AggCount, expr.AggSize, expr.AggSum, expr.AggMean, expr.AggMin, expr.AggMax:
		default:
			return false
		}
	}
	return true
}

// DictGroupFrames runs GROUPBY over the concatenation of frames when the
// dictionary fast path applies, reporting ok=false (and no error) when it
// does not — the caller falls back to the hash path. Eligibility: a single
// Dict-typed key column whose category table is shared (same backing array)
// across all frames, and Int- or Float-typed aggregate columns under
// COUNT/SIZE/SUM/MEAN/MIN/MAX.
func DictGroupFrames(frames []*core.DataFrame, spec expr.GroupBySpec) (*core.DataFrame, bool, error) {
	if !dictGroupEnabled || !dictGroupSupported(spec) {
		return nil, false, nil
	}
	live := frames[:0:0]
	for _, f := range frames {
		if f.NRows() > 0 {
			live = append(live, f)
		}
	}
	if len(live) == 0 {
		if len(frames) == 0 {
			return nil, false, nil
		}
		live = frames[:1]
	}

	// Validate the typed access plans for every frame up front; any miss
	// bails to the hash path before state is built.
	var dict []string
	plans := make([][]dictAggPlan, len(live))
	keyCodes := make([][]int32, len(live))
	keyNulls := make([][]bool, len(live))
	keyIdx := make([][]int, len(live))
	for fi, f := range live {
		j := f.ColIndex(spec.Keys[0])
		if j < 0 {
			return nil, false, nil
		}
		codes, d, nulls, idx, ok := vector.DictData(f.TypedCol(j))
		if !ok {
			return nil, false, nil
		}
		if fi == 0 {
			dict = d
		} else if !vector.SameDict(dict, d) {
			return nil, false, nil
		}
		keyCodes[fi], keyNulls[fi], keyIdx[fi] = codes, nulls, idx
		plans[fi] = make([]dictAggPlan, len(spec.Aggs))
		for k, a := range spec.Aggs {
			p := &plans[fi][k]
			p.kind = a.Agg
			if a.Col == "" {
				// Whole-row aggregates: only the counting kinds read
				// nothing but the row itself (SUM/MIN/MAX of row ordinals
				// would need the hash path's exact ordinal feed).
				if a.Agg != expr.AggCount && a.Agg != expr.AggSize {
					return nil, false, nil
				}
				continue
			}
			p.hasCol = true
			cj := f.ColIndex(a.Col)
			if cj < 0 {
				return nil, false, nil
			}
			col := f.TypedCol(cj)
			if data, nulls, idx, ok := vector.IntData(col); ok {
				p.idata, p.nulls, p.idx = data, nulls, idx
			} else if data, nulls, idx, ok := vector.FloatData(col); ok {
				p.isFloat = true
				p.fdata, p.nulls, p.idx = data, nulls, idx
			} else {
				return nil, false, nil
			}
			if fi > 0 && (plans[0][k].hasCol != p.hasCol || plans[0][k].isFloat != p.isFloat) {
				return nil, false, nil
			}
		}
	}

	// Group discovery on raw codes: rank maps code → group slot, with one
	// extra slot for the null key.
	ncode := int32(len(dict))
	rank := make([]int32, len(dict)+1)
	for i := range rank {
		rank[i] = -1
	}
	var order []int32 // group slot → code, first-appearance
	var sizes []int64
	states := make([]*dictGroupState, len(spec.Aggs))
	for k, a := range spec.Aggs {
		states[k] = &dictGroupState{kind: a.Agg, isFloat: plans[0][k].isFloat, hasCol: plans[0][k].hasCol}
	}

	for fi := range live {
		codes, knulls, kidx := keyCodes[fi], keyNulls[fi], keyIdx[fi]
		n := live[fi].NRows()
		fplans := plans[fi]
		for i := 0; i < n; i++ {
			j := i
			if kidx != nil {
				j = kidx[i]
			}
			code := ncode
			if j >= 0 && (knulls == nil || !knulls[j]) {
				code = codes[j]
			}
			g := rank[code]
			if g < 0 {
				g = int32(len(order))
				rank[code] = g
				order = append(order, code)
				sizes = append(sizes, 0)
				for _, s := range states {
					s.grow()
				}
			}
			sizes[g]++
			for k := range fplans {
				accumulateDictAgg(states[k], &fplans[k], g, i)
			}
		}
	}

	out, err := finalizeDictGroup(spec, dict, order, ncode, sizes, states)
	return out, err == nil, err
}

// accumulateDictAgg folds row i of the frame into group g of state s,
// reproducing Accumulator.Add exactly: null cells (and NaN floats) only
// count toward SIZE; MIN/MAX keep the first value on ties.
func accumulateDictAgg(s *dictGroupState, p *dictAggPlan, g int32, i int) {
	if !p.hasCol {
		// Whole-row aggregates feed the row ordinal, which is never null.
		s.counts[g]++
		return
	}
	j := i
	if p.idx != nil {
		j = p.idx[i]
		if j < 0 {
			return
		}
	}
	if p.nulls != nil && p.nulls[j] {
		return
	}
	if p.isFloat {
		x := p.fdata[j]
		if math.IsNaN(x) {
			return
		}
		first := s.counts[g] == 0
		s.counts[g]++
		switch s.kind {
		case expr.AggSum, expr.AggMean:
			s.sums[g] += x
		case expr.AggMin:
			if first || x < s.minF[g] {
				s.minF[g] = x
			}
		case expr.AggMax:
			if first || s.maxF[g] < x {
				s.maxF[g] = x
			}
		}
		return
	}
	x := p.idata[j]
	first := s.counts[g] == 0
	s.counts[g]++
	switch s.kind {
	case expr.AggSum, expr.AggMean:
		s.sums[g] += float64(x)
	case expr.AggMin:
		if first || x < s.minI[g] {
			s.minI[g] = x
		}
	case expr.AggMax:
		if first || s.maxI[g] < x {
			s.maxI[g] = x
		}
	}
}

// finalizeDictGroup materializes the grouped frame in the same shape as
// GroupPartial.Finalize: key column (or key row labels when AsLabels), then
// one typed column per aggregate.
func finalizeDictGroup(spec expr.GroupBySpec, dict []string, order []int32, ncode int32, sizes []int64, states []*dictGroupState) (*core.DataFrame, error) {
	n := len(order)
	outCodes := make([]int32, n)
	var outNulls []bool
	for i, code := range order {
		if code == ncode {
			if outNulls == nil {
				outNulls = make([]bool, n)
			}
			outNulls[i] = true
		} else {
			outCodes[i] = code
		}
	}
	keyVec := vector.NewDict(outCodes, dict, outNulls)

	var cols []vector.Vector
	var labels []types.Value
	if !spec.AsLabels {
		cols = append(cols, keyVec)
		labels = append(labels, types.String(spec.Keys[0]))
	}
	for k, a := range spec.Aggs {
		cols = append(cols, buildDictAggColumn(states[k], sizes))
		labels = append(labels, types.String(a.OutName()))
	}
	var rowLab vector.Vector
	if spec.AsLabels {
		rowLab = keyVec
	}
	return core.Build(cols, rowLab, labels, nil, nil)
}

// buildDictAggColumn types each aggregate column exactly as buildColumn
// types the boxed Accumulator results: COUNT/SIZE → Int, SUM/MEAN → Float
// (MEAN null on empty groups), MIN/MAX → the aggregate column's own type
// with nulls for empty groups.
func buildDictAggColumn(s *dictGroupState, sizes []int64) vector.Vector {
	n := len(s.counts)
	switch s.kind {
	case expr.AggCount:
		return vector.NewInt(s.counts, nil)
	case expr.AggSize:
		out := make([]int64, n)
		copy(out, sizes)
		return vector.NewInt(out, nil)
	case expr.AggSum:
		return vector.NewFloat(s.sums, nil)
	case expr.AggMean:
		out := make([]float64, n)
		for g, c := range s.counts {
			if c == 0 {
				out[g] = math.NaN() // reads as null, like Accumulator's NullValue
			} else {
				out[g] = s.sums[g] / float64(c)
			}
		}
		return vector.NewFloat(out, nil)
	default: // AggMin / AggMax — the only kinds left after dictGroupSupported
		var nulls []bool
		for g, c := range s.counts {
			if c == 0 {
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[g] = true
			}
		}
		if s.isFloat {
			data := s.minF
			if s.kind == expr.AggMax {
				data = s.maxF
			}
			return vector.NewFloat(data, nulls)
		}
		data := s.minI
		if s.kind == expr.AggMax {
			data = s.maxI
		}
		return vector.NewInt(data, nulls)
	}
}

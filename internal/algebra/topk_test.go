package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/expr"
)

func randomFrame(seed int64, n int) *core.DataFrame {
	rng := rand.New(rand.NewSource(seed))
	records := make([][]any, n)
	for i := range records {
		var v any = rng.Intn(50)
		if rng.Intn(17) == 0 {
			v = nil
		}
		records[i] = []any{v, i}
	}
	return core.MustFromRecords([]string{"k", "seq"}, records)
}

func TestTopKEqualsSortThenLimit(t *testing.T) {
	order := expr.SortOrder{{Col: "k"}}
	for _, n := range []int{3, 10, -3, -10, 0, 1000} {
		df := randomFrame(42, 200)
		want, err := SortFrame(df, order, false)
		if err != nil {
			t.Fatal(err)
		}
		want = LimitFrame(want, n)
		got, err := TopKFrame(df, order, n)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Errorf("n=%d: topk != sort+limit:\n%s\nvs\n%s", n, want, got)
		}
	}
}

func TestTopKDescendingAndMultiKey(t *testing.T) {
	df := randomFrame(7, 150)
	order := expr.SortOrder{{Col: "k", Desc: true}, {Col: "seq"}}
	want, err := SortFrame(df, order, false)
	if err != nil {
		t.Fatal(err)
	}
	want = LimitFrame(want, 7)
	got, err := TopKFrame(df, order, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("desc multikey mismatch:\n%s\nvs\n%s", want, got)
	}
}

func TestTopKUnknownColumn(t *testing.T) {
	df := randomFrame(1, 10)
	if _, err := TopKFrame(df, expr.SortOrder{{Col: "ghost"}}, 3); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestTopKStability(t *testing.T) {
	// Equal keys must preserve input order, exactly like the stable sort.
	df := core.MustFromRecords([]string{"k", "seq"}, [][]any{
		{1, 0}, {1, 1}, {0, 2}, {1, 3}, {0, 4},
	})
	got, err := TopKFrame(df, expr.SortOrder{{Col: "k"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantSeq := []int64{2, 4, 0, 1}
	for i, w := range wantSeq {
		if got.Value(i, 1).Int() != w {
			t.Errorf("row %d seq = %d, want %d\n%s", i, got.Value(i, 1).Int(), w, got)
		}
	}
}

func TestTopKPropertyAgainstSort(t *testing.T) {
	order := expr.SortOrder{{Col: "k"}}
	prop := func(seed int64, kRaw uint8, suffix bool) bool {
		df := randomFrame(seed, 80)
		k := int(kRaw) % 90
		n := k
		if suffix {
			n = -k
		}
		want, err := SortFrame(df, order, false)
		if err != nil {
			return false
		}
		want = LimitFrame(want, n)
		got, err := TopKFrame(df, order, n)
		if err != nil {
			return false
		}
		return want.Equal(got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

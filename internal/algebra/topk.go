package algebra

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dferrors"
	"repro/internal/expr"
	"repro/internal/vector"
)

// TopK is a physical operator (not part of the 14-operator logical algebra)
// produced by the optimizer's LIMIT∘SORT fusion: the ordered k-prefix
// (N>0) or k-suffix (N<0) of the sorted input, computed with a bounded heap
// in O(n log k) instead of a full O(n log n) sort. It is the paper's
// Section 6.1.2 answer to SORT being a blocking operator when the user only
// inspects head/tail.
type TopK struct {
	Input Node
	Order expr.SortOrder
	N     int
}

// Children returns the single input.
func (t *TopK) Children() []Node { return []Node{t.Input} }

// Describe renders the node.
func (t *TopK) Describe() string {
	keys := make([]string, len(t.Order))
	for i, k := range t.Order {
		keys[i] = k.Col
		if k.Desc {
			keys[i] += " desc"
		}
	}
	return fmt.Sprintf("TOPK(%d, by=%v)", t.N, keys)
}

// rowHeap keeps the k best row positions, worst at the top, so a better
// candidate evicts the current worst in O(log k).
type rowHeap struct {
	idx []int
	// worse reports whether row a orders after row b in the kept
	// direction (i.e., a is a worse candidate).
	worse func(a, b int) bool
}

func (h *rowHeap) Len() int           { return len(h.idx) }
func (h *rowHeap) Less(i, j int) bool { return h.worse(h.idx[i], h.idx[j]) }
func (h *rowHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *rowHeap) Push(x any)         { h.idx = append(h.idx, x.(int)) }
func (h *rowHeap) Pop() any           { last := h.idx[len(h.idx)-1]; h.idx = h.idx[:len(h.idx)-1]; return last }

// TopKFrame computes the ordered k-prefix (n>0) or k-suffix (n<0) of
// SORT(df, order) without sorting the whole frame. Ties resolve by input
// position, matching the stable SORT kernel exactly.
func TopKFrame(df *core.DataFrame, order expr.SortOrder, n int) (*core.DataFrame, error) {
	k := n
	suffix := false
	if n < 0 {
		k = -n
		suffix = true
	}
	if k >= df.NRows() {
		return SortFrame(df, order, false)
	}
	if k == 0 {
		return df.SliceRows(0, 0), nil
	}
	keys := make([]vector.Vector, len(order))
	for i, o := range order {
		j := df.ColIndex(o.Col)
		if j < 0 {
			return nil, fmt.Errorf("algebra: topk on %w %q", dferrors.ErrUnknownColumn, o.Col)
		}
		keys[i] = df.TypedCol(j)
	}

	// less reports whether row a sorts strictly before row b under the
	// order, with input position breaking ties (stability). Comparisons run
	// through the typed kernels, not boxed values.
	less := func(a, b int) bool {
		for i, o := range order {
			c := vector.CompareRows(keys[i], a, keys[i], b)
			if o.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return a < b
	}

	// For a prefix we keep the k smallest (heap ordered so the largest
	// kept row pops first); for a suffix, the k largest.
	h := &rowHeap{}
	if suffix {
		h.worse = less
	} else {
		h.worse = func(a, b int) bool { return less(b, a) }
	}
	for i := 0; i < df.NRows(); i++ {
		if h.Len() < k {
			heap.Push(h, i)
			continue
		}
		worst := h.idx[0]
		if suffix {
			// Keep i if it sorts after the current worst (larger).
			if less(worst, i) {
				h.idx[0] = i
				heap.Fix(h, 0)
			}
		} else {
			if less(i, worst) {
				h.idx[0] = i
				heap.Fix(h, 0)
			}
		}
	}
	picked := append([]int(nil), h.idx...)
	sort.Slice(picked, func(a, b int) bool { return less(picked[a], picked[b]) })
	return df.TakeRows(picked), nil
}

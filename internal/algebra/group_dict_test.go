package algebra

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// dictFrame builds a frame with a natively dictionary-coded key column plus
// Int and Float aggregate columns (with nulls sprinkled through all three).
func dictFrame(t *testing.T, rows, cats int) *core.DataFrame {
	t.Helper()
	dict := make([]string, cats)
	for c := range dict {
		dict[c] = "cat-" + string(rune('a'+c%26)) + "-" + string(rune('0'+c%10))
	}
	codes := make([]int32, rows)
	var knulls []bool
	iv := make([]int64, rows)
	var inulls []bool
	fv := make([]float64, rows)
	var fnulls []bool
	for i := 0; i < rows; i++ {
		codes[i] = int32((i * i) % cats)
		iv[i] = int64(i%13 - 6)
		fv[i] = float64(i%7) + 0.25
		if i%17 == 0 {
			if knulls == nil {
				knulls = make([]bool, rows)
			}
			knulls[i] = true
		}
		if i%5 == 0 {
			if inulls == nil {
				inulls = make([]bool, rows)
			}
			inulls[i] = true
		}
		if i%9 == 0 {
			if fnulls == nil {
				fnulls = make([]bool, rows)
			}
			fnulls[i] = true
		}
	}
	df, err := core.Build(
		[]vector.Vector{
			vector.NewDict(codes, dict, knulls),
			vector.NewInt(iv, inulls),
			vector.NewFloat(fv, fnulls),
		},
		vector.Range(0, rows),
		[]types.Value{types.String("k"), types.String("iv"), types.String("fv")},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func fullAggSpec(asLabels bool) expr.GroupBySpec {
	return expr.GroupBySpec{
		Keys:     []string{"k"},
		AsLabels: asLabels,
		Aggs: []expr.AggSpec{
			{Col: "iv", Agg: expr.AggCount, As: "n"},
			{Agg: expr.AggSize, As: "sz"},
			{Col: "iv", Agg: expr.AggSum, As: "isum"},
			{Col: "fv", Agg: expr.AggSum, As: "fsum"},
			{Col: "iv", Agg: expr.AggMean, As: "imean"},
			{Col: "iv", Agg: expr.AggMin, As: "imin"},
			{Col: "fv", Agg: expr.AggMax, As: "fmax"},
		},
	}
}

// TestDictGroupMatchesHashPath requires the dictionary code path to
// reproduce the hash path bit-for-bit across every supported agg kind,
// with and without AsLabels, including null keys and null agg values.
func TestDictGroupMatchesHashPath(t *testing.T) {
	df := dictFrame(t, 500, 23)
	for _, asLabels := range []bool{false, true} {
		spec := fullAggSpec(asLabels)
		dict, ok, err := DictGroupFrames([]*core.DataFrame{df}, spec)
		if err != nil {
			t.Fatalf("dict path: %v", err)
		}
		if !ok {
			t.Fatal("dict path must apply to a Dict-keyed frame")
		}
		restore := SetDictGroupForTesting(false)
		hash, err := GroupByFrame(df, spec)
		restore()
		if err != nil {
			t.Fatalf("hash path: %v", err)
		}
		if !hash.Equal(dict) {
			t.Fatalf("asLabels=%v: paths disagree:\nhash:\n%s\ndict:\n%s", asLabels, hash, dict)
		}
	}
}

// TestDictGroupMultiFrame covers the shuffle-merge use: several frames
// (views over slices of one dict-coded frame) fold into one grouped result
// identical to grouping the stacked frame.
func TestDictGroupMultiFrame(t *testing.T) {
	df := dictFrame(t, 600, 17)
	pieces := []*core.DataFrame{
		df.SliceRows(0, 200), df.SliceRows(200, 250), df.SliceRows(250, 600),
	}
	spec := fullAggSpec(false)
	got, ok, err := DictGroupFrames(pieces, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("dict path must apply to shared-dict slices")
	}
	restore := SetDictGroupForTesting(false)
	want, err := GroupByFrame(df, spec)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatalf("multi-frame dict groupby disagrees:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestDictGroupMeanOfEmptyGroup pins the empty-group semantics: a category
// whose every row has a null agg value yields null mean/min/max, zero sum,
// zero count, nonzero size.
func TestDictGroupMeanOfEmptyGroup(t *testing.T) {
	df, err := core.Build(
		[]vector.Vector{
			vector.NewDict([]int32{0, 1, 0, 1}, []string{"x", "y"}, nil),
			vector.NewInt([]int64{1, 0, 3, 0}, []bool{false, true, false, true}),
		},
		vector.Range(0, 4),
		[]types.Value{types.String("k"), types.String("v")},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := expr.GroupBySpec{Keys: []string{"k"}, Aggs: []expr.AggSpec{
		{Col: "v", Agg: expr.AggMean, As: "m"},
		{Col: "v", Agg: expr.AggMin, As: "lo"},
		{Col: "v", Agg: expr.AggSum, As: "s"},
		{Col: "v", Agg: expr.AggCount, As: "n"},
		{Agg: expr.AggSize, As: "sz"},
	}}
	out, ok, err := DictGroupFrames([]*core.DataFrame{df}, spec)
	if err != nil || !ok {
		t.Fatalf("dict path: ok=%v err=%v", ok, err)
	}
	// Row 1 is category "y": all agg values null.
	if !out.Value(1, out.ColIndex("m")).IsNull() || !out.Value(1, out.ColIndex("lo")).IsNull() {
		t.Errorf("empty group must have null mean/min:\n%s", out)
	}
	if out.Value(1, out.ColIndex("s")).Float() != 0 || out.Value(1, out.ColIndex("n")).Int() != 0 {
		t.Errorf("empty group must have sum=0 count=0:\n%s", out)
	}
	if out.Value(1, out.ColIndex("sz")).Int() != 2 {
		t.Errorf("size counts null rows:\n%s", out)
	}
	if math.IsNaN(out.Value(0, out.ColIndex("m")).Float()) {
		t.Errorf("non-empty group mean must be real:\n%s", out)
	}
}

// TestDictGroupFallbacks verifies each eligibility gate reports !ok (no
// error) so callers fall back to the hash path.
func TestDictGroupFallbacks(t *testing.T) {
	dictDF := dictFrame(t, 100, 7)
	objDF := core.MustFromRecords([]string{"k", "iv"}, [][]any{{"a", 1}, {"b", 2}})
	sum := expr.GroupBySpec{Keys: []string{"k"}, Aggs: []expr.AggSpec{{Col: "iv", Agg: expr.AggSum, As: "s"}}}
	cases := []struct {
		name   string
		frames []*core.DataFrame
		spec   expr.GroupBySpec
	}{
		{"non-dict key", []*core.DataFrame{objDF}, sum},
		{"two keys", []*core.DataFrame{dictDF}, expr.GroupBySpec{Keys: []string{"k", "iv"},
			Aggs: []expr.AggSpec{{Col: "fv", Agg: expr.AggSum, As: "s"}}}},
		{"unsupported agg", []*core.DataFrame{dictDF}, expr.GroupBySpec{Keys: []string{"k"},
			Aggs: []expr.AggSpec{{Col: "iv", Agg: expr.AggVar, As: "v"}}}},
		{"ordinal sum", []*core.DataFrame{dictDF}, expr.GroupBySpec{Keys: []string{"k"},
			Aggs: []expr.AggSpec{{Agg: expr.AggSum, As: "s"}}}},
		{"sorted", []*core.DataFrame{dictDF}, expr.GroupBySpec{Keys: []string{"k"}, Sorted: true,
			Aggs: []expr.AggSpec{{Col: "iv", Agg: expr.AggSum, As: "s"}}}},
		{"mixed dicts", []*core.DataFrame{dictDF, dictFrame(t, 50, 7)}, sum},
	}
	for _, tc := range cases {
		if _, ok, err := DictGroupFrames(tc.frames, tc.spec); ok || err != nil {
			t.Errorf("%s: ok=%v err=%v, want fallback", tc.name, ok, err)
		}
	}
}

// TestJoinTableMatchesJoinFrames requires the typed open-addressing probe
// to reproduce JoinFrames exactly for inner and left joins with duplicate
// and null keys.
func TestJoinTableMatchesJoinFrames(t *testing.T) {
	n := 300
	lrec := make([][]any, n)
	for i := range lrec {
		var k any = i % 11
		if i%23 == 0 {
			k = nil
		}
		lrec[i] = []any{k, i}
	}
	rrec := make([][]any, n/2)
	for i := range rrec {
		var k any = i % 13
		if i%19 == 0 {
			k = nil
		}
		rrec[i] = []any{k, i * 2}
	}
	left := core.MustFromRecords([]string{"k", "x"}, lrec)
	right := core.MustFromRecords([]string{"k", "y"}, rrec)
	for _, kind := range []expr.JoinKind{expr.JoinInner, expr.JoinLeft} {
		want, err := JoinFrames(left, right, kind, []string{"k"}, false)
		if err != nil {
			t.Fatal(err)
		}
		table, err := BuildJoinTable(right, []string{"k"})
		if err != nil {
			t.Fatal(err)
		}
		li, ri, err := table.Probe(left, []string{"k"}, kind, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AssembleJoin(left, table.Right(), []string{"k"}, false, li, ri)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatalf("kind %v: join table disagrees with JoinFrames:\nwant:\n%s\ngot:\n%s", kind, want, got)
		}
	}
}

package algebra

import (
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/vector"
)

// SelectWhere implements SELECTION for structured predicates: each
// column-op-constant term runs as a typed filter kernel over the column's
// storage slices, narrowing one shared selection vector, and the surviving
// positions are gathered once at the end. No types.Value is constructed per
// cell on the kernel path; terms the kernels cannot express (see
// vector.Filter) fall back to a boxed per-candidate comparison with
// identical semantics.
//
// A nil or empty Where is the vacuous conjunction: every row survives,
// matching expr.And() over zero predicates.
func SelectWhere(df *core.DataFrame, w *expr.Where) (*core.DataFrame, error) {
	if w == nil || len(w.Terms) == 0 {
		return df, nil
	}
	var sel []int // nil = all rows; narrows term by term
	for _, t := range w.Terms {
		j := df.ColIndex(t.Col)
		if j < 0 {
			// Missing columns read as null for every row, mirroring
			// Row.ByName — decidable without building a vector: the
			// IsNull spelling (CmpEq against null) keeps the current
			// selection, every other comparison keeps nothing.
			if t.Op == vector.CmpEq && t.Operand.IsNull() {
				continue
			}
			sel = []int{}
			break
		}
		col := df.TypedCol(j)
		out, ok := vector.Filter(col, t.Op, t.Operand, sel)
		if !ok {
			out = filterBoxedTerm(col, t, sel)
		}
		sel = out
		if len(sel) == 0 {
			break
		}
	}
	if sel == nil {
		// Every term kept every row (e.g. only missing-column IsNull
		// terms): the frame passes through unchanged.
		return df, nil
	}
	return df.TakeRows(sel), nil
}

// filterBoxedTerm is the row-at-a-time fallback for terms without a typed
// kernel (cross-representation operands, Composite columns).
func filterBoxedTerm(col vector.Vector, t expr.WhereTerm, sel []int) []int {
	if sel != nil {
		out := make([]int, 0, len(sel))
		for _, i := range sel {
			if t.Match(col.Value(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	out := make([]int, 0, col.Len())
	for i := 0; i < col.Len(); i++ {
		if t.Match(col.Value(i)) {
			out = append(out, i)
		}
	}
	return out
}

package algebra

import (
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// SelectWhere implements SELECTION for structured predicates: each
// column-op-constant term runs as a typed filter kernel over the column's
// storage slices, narrowing one shared selection vector, and the surviving
// positions are gathered once at the end. No types.Value is constructed per
// cell on the kernel path; terms the kernels cannot express (see
// vector.Filter) fall back to a boxed per-candidate comparison with
// identical semantics.
//
// A nil or empty Where is the vacuous conjunction: every row survives,
// matching expr.And() over zero predicates.
func SelectWhere(df *core.DataFrame, w *expr.Where) (*core.DataFrame, error) {
	if w == nil || len(w.Terms) == 0 {
		return df, nil
	}
	var sel []int // nil = all rows; narrows term by term
	for _, t := range w.Terms {
		j := df.ColIndex(t.Col)
		if j < 0 {
			// Missing columns read as null for every row, mirroring
			// Row.ByName — decidable without building a vector: the
			// IsNull spelling (CmpEq against null) keeps the current
			// selection, every other comparison keeps nothing.
			if t.Op == vector.CmpEq && t.Operand.IsNull() {
				continue
			}
			sel = []int{}
			break
		}
		col := df.TypedCol(j)
		out, ok := vector.Filter(col, t.Op, t.Operand, sel)
		if !ok {
			out = filterBoxedTerm(col, t, sel)
		}
		sel = out
		if len(sel) == 0 {
			break
		}
	}
	if sel == nil {
		// Every term kept every row (e.g. only missing-column IsNull
		// terms): the frame passes through unchanged.
		return df, nil
	}
	return df.TakeRows(sel), nil
}

// SelectWhereView is SelectWhere with the final gather deferred: the result's
// columns are zero-copy views (vector.TakeView) over the input's storage
// instead of materialized copies. When the input is itself such a view frame
// — the output of an earlier SelectWhereView in the same fused chain — the
// terms run against the shared base storage with the selection vector seeded
// from the input's view indices, so consecutive filters narrow one selection
// vector across kernel boundaries and the chain pays a single coalescing
// copy (core.DataFrame.Compact) at stage exit.
//
// Schema induction note: on the composed path, lazily-typed columns induce
// over the shared base band rather than the already-filtered subset. For a
// column whose type is stable across the band the two agree; mixed-type
// columns inherit the engine's per-band induction semantics.
func SelectWhereView(df *core.DataFrame, w *expr.Where) (*core.DataFrame, error) {
	if w == nil || len(w.Terms) == 0 {
		return df, nil
	}
	base, sel := viewBase(df)
	for _, t := range w.Terms {
		j := base.ColIndex(t.Col)
		if j < 0 {
			if t.Op == vector.CmpEq && t.Operand.IsNull() {
				continue
			}
			sel = []int{}
			break
		}
		col := base.TypedCol(j)
		out, ok := vector.Filter(col, t.Op, t.Operand, sel)
		if !ok {
			out = filterBoxedTerm(col, t, sel)
		}
		sel = out
		if len(sel) == 0 {
			break
		}
	}
	if sel == nil {
		return df, nil
	}
	return takeRowsView(base, sel)
}

// viewBase unwraps a frame whose columns (and row labels) are all views
// sharing one selection vector, returning the base frame and that vector.
// Any other frame returns (df, nil): terms then filter df directly.
func viewBase(df *core.DataFrame) (*core.DataFrame, []int) {
	n := df.NCols()
	if n == 0 {
		return df, nil
	}
	_, idx0, ok := vector.ViewParts(df.Col(0))
	if !ok {
		return df, nil
	}
	bases := make([]vector.Vector, n)
	for j := 0; j < n; j++ {
		b, idx, ok := vector.ViewParts(df.Col(j))
		if !ok || !sameSel(idx, idx0) {
			return df, nil
		}
		bases[j] = b
	}
	rb, ridx, ok := vector.ViewParts(df.RowLabels())
	if !ok || !sameSel(ridx, idx0) {
		return df, nil
	}
	for _, i := range idx0 {
		if i < 0 {
			// A -1 view index reads as null; composing it into a filter's
			// candidate set would index out of the base. Bail to the
			// direct path.
			return df, nil
		}
	}
	base, err := core.Build(bases, rb, df.ColLabels(), append([]types.Domain(nil), df.Domains()...), df.Cache())
	if err != nil {
		return df, nil
	}
	return base, idx0
}

// sameSel reports whether two selection vectors are the same slice.
func sameSel(a, b []int) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// takeRowsView is TakeRows without the copy: every column (and the row
// labels) becomes a view over df at sel.
func takeRowsView(df *core.DataFrame, sel []int) (*core.DataFrame, error) {
	cols := make([]vector.Vector, df.NCols())
	for j := range cols {
		cols[j] = vector.TakeView(df.Col(j), sel)
	}
	domains := append([]types.Domain(nil), df.Domains()...)
	return core.Build(cols, vector.TakeView(df.RowLabels(), sel), df.ColLabels(), domains, df.Cache())
}

// filterBoxedTerm is the row-at-a-time fallback for terms without a typed
// kernel (cross-representation operands, Composite columns).
func filterBoxedTerm(col vector.Vector, t expr.WhereTerm, sel []int) []int {
	if sel != nil {
		out := make([]int, 0, len(sel))
		for _, i := range sel {
			if t.Match(col.Value(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	out := make([]int, 0, col.Len())
	for i := 0; i < col.Len(); i++ {
		if t.Match(col.Value(i)) {
			out = append(out, i)
		}
	}
	return out
}

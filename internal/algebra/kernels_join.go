package algebra

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// joinGroup is one distinct build-side key: the ordered row positions
// carrying it, plus an anchor row for collision verification (probes compare
// typed cells against the anchor instead of rendering keys).
type joinGroup struct {
	anchor int
	rows   []int
}

// JoinFrames implements JOIN and CROSS-PRODUCT. The result order is nested:
// left rows in order, each associated in order with its matching right rows
// (Table 1 †). Unmatched right rows of right/outer joins follow in right
// order. Column-label collisions outside the join keys get pandas-style
// "_x"/"_y" suffixes.
//
// Key matching is hash-based: both sides' key columns are bulk-hashed, the
// build side chains distinct keys per hash, and probes verify equality with
// the typed vector kernels — no per-row string keys, no boxed values.
func JoinFrames(left, right *core.DataFrame, kind expr.JoinKind, on []string, onLabels bool) (*core.DataFrame, error) {
	if kind == expr.JoinCross {
		return crossProduct(left, right)
	}
	if !onLabels && len(on) == 0 {
		return nil, fmt.Errorf("algebra: %s join requires key columns or onLabels", kind)
	}

	leftKeys, rightKeys, err := joinKeyColumns(left, right, on, onLabels)
	if err != nil {
		return nil, err
	}

	// Build side: right key → ordered row positions. Null keys never
	// match (SQL and pandas semantics).
	rightHashes := rowHashes(rightKeys, right.NRows())
	build := make(map[uint64][]joinGroup, right.NRows())
	for i := 0; i < right.NRows(); i++ {
		if anyNullAt(rightKeys, i) {
			continue
		}
		h := rightHashes[i]
		groups := build[h]
		found := false
		for gi := range groups {
			if rowsEqualAt(rightKeys, i, rightKeys, groups[gi].anchor) {
				groups[gi].rows = append(groups[gi].rows, i)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, joinGroup{anchor: i, rows: []int{i}})
		}
		build[h] = groups
	}

	leftHashes := rowHashes(leftKeys, left.NRows())
	var leftIdx, rightIdx []int
	rightMatched := make([]bool, right.NRows())
	for i := 0; i < left.NRows(); i++ {
		var matches []int
		if !anyNullAt(leftKeys, i) {
			for _, grp := range build[leftHashes[i]] {
				if rowsEqualAt(leftKeys, i, rightKeys, grp.anchor) {
					matches = grp.rows
					break
				}
			}
		}
		if len(matches) == 0 {
			if kind == expr.JoinLeft || kind == expr.JoinOuter {
				leftIdx = append(leftIdx, i)
				rightIdx = append(rightIdx, -1)
			}
			continue
		}
		for _, ri := range matches {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, ri)
			rightMatched[ri] = true
		}
	}
	if kind == expr.JoinRight || kind == expr.JoinOuter {
		for i := 0; i < right.NRows(); i++ {
			if !rightMatched[i] {
				leftIdx = append(leftIdx, -1)
				rightIdx = append(rightIdx, i)
			}
		}
	}

	return assembleJoin(left, right, on, onLabels, leftIdx, rightIdx)
}

// rowsEqualAt verifies column-wise key equality between row i of cols a and
// row j of cols b.
func rowsEqualAt(a []vector.Vector, i int, b []vector.Vector, j int) bool {
	for k := range a {
		if !vector.EqualRows(a[k], i, b[k], j) {
			return false
		}
	}
	return true
}

// crossProduct yields the ordered cross product: each left tuple paired, in
// order, with every right tuple.
func crossProduct(left, right *core.DataFrame) (*core.DataFrame, error) {
	nl, nr := left.NRows(), right.NRows()
	leftIdx := make([]int, 0, nl*nr)
	rightIdx := make([]int, 0, nl*nr)
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, j)
		}
	}
	return assembleJoin(left, right, nil, false, leftIdx, rightIdx)
}

// joinKeyColumns resolves the typed key vectors for both sides.
func joinKeyColumns(left, right *core.DataFrame, on []string, onLabels bool) (lk, rk []vector.Vector, err error) {
	if onLabels {
		return []vector.Vector{left.RowLabels()}, []vector.Vector{right.RowLabels()}, nil
	}
	for _, name := range on {
		lj, rj := left.ColIndex(name), right.ColIndex(name)
		if lj < 0 {
			return nil, nil, fmt.Errorf("algebra: join key %q missing from left input", name)
		}
		if rj < 0 {
			return nil, nil, fmt.Errorf("algebra: join key %q missing from right input", name)
		}
		lk = append(lk, left.TypedCol(lj))
		rk = append(rk, right.TypedCol(rj))
	}
	return lk, rk, nil
}

func anyNullAt(cols []vector.Vector, i int) bool {
	for _, c := range cols {
		if c.IsNull(i) {
			return true
		}
	}
	return false
}

// assembleJoin materializes the joined frame from matched row index pairs
// (-1 meaning null-extension on that side).
func assembleJoin(left, right *core.DataFrame, on []string, onLabels bool, leftIdx, rightIdx []int) (*core.DataFrame, error) {
	onSet := make(map[string]bool, len(on))
	for _, name := range on {
		onSet[name] = true
	}
	leftNames := make(map[string]bool, left.NCols())
	for _, n := range left.ColNames() {
		leftNames[n] = true
	}

	var cols []vector.Vector
	var labels []types.Value

	for j := 0; j < left.NCols(); j++ {
		name := left.ColName(j)
		col := left.Col(j).Take(leftIdx)
		if onSet[name] {
			// Join keys appear once; fill left-null slots (unmatched
			// right rows of outer joins) from the right side.
			if rj := right.ColIndex(name); rj >= 0 {
				col = coalesceTake(left.Col(j), right.Col(rj), leftIdx, rightIdx)
			}
			labels = append(labels, types.String(name))
		} else if right.ColIndex(name) >= 0 {
			labels = append(labels, types.String(name+"_x"))
		} else {
			labels = append(labels, types.String(name))
		}
		cols = append(cols, col)
	}
	for j := 0; j < right.NCols(); j++ {
		name := right.ColName(j)
		if onSet[name] {
			continue
		}
		if leftNames[name] {
			labels = append(labels, types.String(name+"_y"))
		} else {
			labels = append(labels, types.String(name))
		}
		cols = append(cols, right.Col(j).Take(rightIdx))
	}

	// Row labels: label-joins keep the join label; data joins reset to
	// positional notation (pandas merge semantics).
	var rowLab vector.Vector
	if onLabels {
		rowLab = coalesceTake(left.RowLabels(), right.RowLabels(), leftIdx, rightIdx)
	} else {
		rowLab = vector.Range(0, len(leftIdx))
	}
	return core.Build(cols, rowLab, labels, nil, left.Cache())
}

// coalesceTake takes from primary at pIdx, falling back to secondary at
// sIdx where pIdx is -1.
func coalesceTake(primary, secondary vector.Vector, pIdx, sIdx []int) vector.Vector {
	vals := make([]types.Value, len(pIdx))
	dom := primary.Domain()
	for k := range pIdx {
		switch {
		case pIdx[k] >= 0:
			vals[k] = primary.Value(pIdx[k])
		case sIdx[k] >= 0:
			vals[k] = secondary.Value(sIdx[k])
		default:
			vals[k] = types.Null()
		}
	}
	if dom != secondary.Domain() {
		dom = types.Object
	}
	return vector.FromValues(dom, vals)
}

package algebra

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dferrors"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// Section 4.4: pandas functions that are compositions of algebra operators.
// Each function here both documents the rewrite and executes it through the
// algebra kernels, so the compositions in the paper are tested code rather
// than prose.

// IsNullFn is the MAP behind pandas isnull/isna: each cell becomes a
// boolean. Its output domain is statically known, so engines skip schema
// induction on the result (the Section 5.1.1 rewrite).
func IsNullFn() expr.MapFn {
	return expr.MapFn{
		Name:        "isnull",
		OutDoms:     []types.Domain{types.Bool},
		Elementwise: func(v types.Value) types.Value { return types.BoolValue(v.IsNull()) },
	}
}

// FillNAFn is the MAP behind pandas fillna: nulls become the given value.
func FillNAFn(fill types.Value) expr.MapFn {
	return expr.MapFn{
		Name: "fillna",
		Elementwise: func(v types.Value) types.Value {
			if v.IsNull() {
				return fill
			}
			return v
		},
	}
}

// StrUpperFn is the MAP behind pandas str.upper.
func StrUpperFn() expr.MapFn {
	return expr.MapFn{
		Name: "str.upper",
		Elementwise: func(v types.Value) types.Value {
			if v.IsNull() || (v.Domain() != types.Object && v.Domain() != types.Category) {
				return v
			}
			return types.String(strings.ToUpper(v.Str()))
		},
	}
}

// NormalizeFloatsFn is the generic reusable MAP from Section 4.3's
// discussion: it normalizes each float-domain cell by the sum of the float
// cells in its row, without enumerating the schema — the kind of
// whole-row-generic function SQL projection lists cannot express.
func NormalizeFloatsFn(doms []types.Domain) expr.MapFn {
	return expr.MapFn{
		Name: "normalize-floats",
		Fn: func(r expr.Row) []types.Value {
			sum := 0.0
			for j := 0; j < r.NCols(); j++ {
				if doms[j] == types.Float && !r.Value(j).IsNull() {
					sum += r.Value(j).Float()
				}
			}
			out := make([]types.Value, r.NCols())
			for j := 0; j < r.NCols(); j++ {
				v := r.Value(j)
				if doms[j] == types.Float && !v.IsNull() && sum != 0 {
					out[j] = types.FloatValue(v.Float() / sum)
				} else {
					out[j] = v
				}
			}
			return out
		},
	}
}

// DistinctValues returns the distinct non-null values of the named column in
// first-appearance order. It is the metadata pre-pass that data-dependent-
// schema operators (pivot, get_dummies) require: their output arity depends
// on distinct-value counts (Section 5.2.3).
func DistinctValues(df *core.DataFrame, col string) ([]types.Value, error) {
	j := df.ColIndex(col)
	if j < 0 {
		return nil, fmt.Errorf("algebra: distinct over %w %q", dferrors.ErrUnknownColumn, col)
	}
	v := df.TypedCol(j)
	seen := make(map[string]struct{})
	var out []types.Value
	for i := 0; i < v.Len(); i++ {
		val := v.Value(i)
		if val.IsNull() {
			continue
		}
		k := val.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, val)
	}
	return out, nil
}

// PivotFlattenFn builds the "flatten" MAP of the pivot plan (Figure 6): it
// consumes a GROUPBY-collect row — pivot key plus a composite cell holding
// that group's sub-dataframe — and emits one output row: the key followed
// by the value-column entry for each distinct index value (null when the
// group lacks that index value).
func PivotFlattenFn(pivotCol, indexCol, valueCol string, indexValues []types.Value) expr.MapFn {
	outCols := make([]types.Value, 0, len(indexValues)+1)
	outCols = append(outCols, types.String(pivotCol))
	for _, v := range indexValues {
		outCols = append(outCols, v)
	}
	return expr.MapFn{
		Name:    "flatten",
		OutCols: outCols,
		GroupFn: func(r expr.Row) []types.Value {
			out := make([]types.Value, len(outCols))
			out[0] = r.ByName(pivotCol)
			for i := range indexValues {
				out[i+1] = types.Null()
			}
			comp := r.ByName(valueCol + "_collect").CompositePayload()
			sub, ok := comp.(*core.DataFrame)
			if !ok || sub == nil {
				return out
			}
			ij, vj := sub.ColIndex(indexCol), sub.ColIndex(valueCol)
			if ij < 0 || vj < 0 {
				return out
			}
			for i := 0; i < sub.NRows(); i++ {
				key := sub.Value(i, ij)
				for k, iv := range indexValues {
					if key.Equal(iv) {
						out[k+1] = sub.Value(i, vj)
					}
				}
			}
			return out
		},
	}
}

// PivotPlan builds the Figure 6 logical plan that pivots input around
// pivotCol: GROUPBY(pivotCol, collect) → MAP(flatten) → TOLABELS(pivotCol)
// → TRANSPOSE. indexValues must be the distinct values of indexCol (the
// metadata pre-pass); sorted declares the input ordered by pivotCol,
// enabling the streaming group-by of the Figure 8(b) rewrite.
func PivotPlan(input Node, pivotCol, indexCol, valueCol string, indexValues []types.Value, sorted bool) Node {
	grouped := &GroupBy{
		Input: input,
		Spec: expr.GroupBySpec{
			Keys:   []string{pivotCol},
			Aggs:   []expr.AggSpec{{Col: valueCol, Agg: expr.AggCollect}},
			Sorted: sorted,
		},
	}
	flattened := &Map{Input: grouped, Fn: PivotFlattenFn(pivotCol, indexCol, valueCol, indexValues)}
	labeled := &ToLabels{Input: flattened, Col: pivotCol}
	return &Transpose{Input: labeled}
}

// Pivot executes the Figure 6 pivot directly through the kernels: the
// result has one row per distinct indexCol value and one column per
// distinct pivotCol value (pivotCol values are elevated into the column
// labels).
func Pivot(df *core.DataFrame, pivotCol, indexCol, valueCol string) (*core.DataFrame, error) {
	indexValues, err := DistinctValues(df, indexCol)
	if err != nil {
		return nil, err
	}
	grouped, err := GroupByFrame(df, expr.GroupBySpec{
		Keys: []string{pivotCol},
		Aggs: []expr.AggSpec{{Col: valueCol, Agg: expr.AggCollect}},
	})
	if err != nil {
		return nil, err
	}
	flat, err := MapFrame(grouped, PivotFlattenFn(pivotCol, indexCol, valueCol, indexValues))
	if err != nil {
		return nil, err
	}
	labeled, err := ToLabelsFrame(flat, pivotCol)
	if err != nil {
		return nil, err
	}
	return TransposeFrame(labeled, nil)
}

// GetDummies implements the pandas get_dummies macro (step A1 of Figure 1):
// every non-numeric column is one-hot encoded into one boolean column per
// distinct value, labelled "col_value"; numeric columns pass through. In
// the algebra this is a GROUPBY-derived metadata pass followed by a MAP
// whose output schema depends on the data — the arity-estimation challenge
// of Section 5.2.3.
func GetDummies(df *core.DataFrame) (*core.DataFrame, error) {
	var cols []vector.Vector
	var labels []types.Value
	var doms []types.Domain
	for j := 0; j < df.NCols(); j++ {
		d := df.Domain(j)
		if d.Numeric() || d == types.Datetime {
			cols = append(cols, df.Col(j))
			labels = append(labels, df.ColLabels()[j])
			doms = append(doms, df.DeclaredDomain(j))
			continue
		}
		name := df.ColName(j)
		distinct, err := DistinctValues(df, name)
		if err != nil {
			return nil, err
		}
		in := df.TypedCol(j)
		for _, dv := range distinct {
			data := make([]bool, in.Len())
			for i := range data {
				data[i] = in.Value(i).Equal(dv)
			}
			cols = append(cols, vector.NewBool(data, nil))
			labels = append(labels, types.String(name+"_"+dv.String()))
			doms = append(doms, types.Bool)
		}
	}
	return core.Build(cols, df.RowLabels(), labels, doms, df.Cache())
}

// AggAll implements the pandas agg(['f1','f2',...]) rewrite from Section
// 4.4: each aggregate is one whole-frame GROUPBY (no keys) producing a
// single row, and the rows are UNIONed in the order the aggregates are
// listed. Row labels carry the aggregate names.
func AggAll(df *core.DataFrame, kinds []expr.AggKind, cols []string) (*core.DataFrame, error) {
	if cols == nil {
		for j := 0; j < df.NCols(); j++ {
			if df.Domain(j).Numeric() {
				cols = append(cols, df.ColName(j))
			}
		}
	}
	var out *core.DataFrame
	for _, kind := range kinds {
		aggs := make([]expr.AggSpec, len(cols))
		for i, c := range cols {
			aggs[i] = expr.AggSpec{Col: c, Agg: kind, As: c}
		}
		row, err := GroupByFrame(df, expr.GroupBySpec{Aggs: aggs})
		if err != nil {
			return nil, err
		}
		row, err = row.WithRowLabels(vector.Repeat(types.String(kind.String()), row.NRows()))
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = row
			continue
		}
		out, err = UnionFrames(out, row)
		if err != nil {
			return nil, err
		}
	}
	if out == nil {
		return core.Empty(), nil
	}
	return out, nil
}

// ReindexLike implements target.reindex_like(reference) from Section 4.4:
// the target's rows and columns are reordered to match the reference's row
// labels and column order, with nulls where the target lacks a label.
// Algebraically: FROMLABELS both → INNER JOIN on labels (reference left) →
// MAP projecting target attributes → TOLABELS.
func ReindexLike(target, reference *core.DataFrame) (*core.DataFrame, error) {
	// Row alignment: reference label order, positions into target.
	pos := make(map[string]int, target.NRows())
	tl := target.RowLabels()
	for i := 0; i < tl.Len(); i++ {
		key := tl.Value(i).Key()
		if _, ok := pos[key]; !ok {
			pos[key] = i
		}
	}
	rl := reference.RowLabels()
	idx := make([]int, rl.Len())
	for i := range idx {
		if p, ok := pos[rl.Value(i).Key()]; ok {
			idx[i] = p
		} else {
			idx[i] = -1
		}
	}
	aligned := target.TakeRows(idx)
	aligned, err := aligned.WithRowLabels(rl)
	if err != nil {
		return nil, err
	}

	// Column alignment: reference column order, null columns where the
	// target lacks the label.
	cols := make([]vector.Vector, reference.NCols())
	labels := make([]types.Value, reference.NCols())
	for j := 0; j < reference.NCols(); j++ {
		name := reference.ColName(j)
		labels[j] = reference.ColLabels()[j]
		if tj := aligned.ColIndex(name); tj >= 0 {
			cols[j] = aligned.Col(tj)
		} else {
			cols[j] = vector.Nulls(types.Object, aligned.NRows())
		}
	}
	return core.Build(cols, rl, labels, nil, target.Cache())
}

// Cov computes the covariance matrix of a matrix dataframe (step A3 of
// Figure 1): a k×k frame whose row and column labels are the input's
// numeric column labels. Pairs are computed over rows where both columns
// are non-null, with the n-1 normalization pandas uses.
func Cov(df *core.DataFrame) (*core.DataFrame, error) {
	var numIdx []int
	for j := 0; j < df.NCols(); j++ {
		if df.Domain(j).Numeric() {
			numIdx = append(numIdx, j)
		}
	}
	k := len(numIdx)
	if k == 0 {
		return nil, fmt.Errorf("algebra: cov requires at least one numeric column")
	}
	colsIn := make([]vector.Vector, k)
	labels := make([]types.Value, k)
	for a, j := range numIdx {
		colsIn[a] = df.TypedCol(j)
		labels[a] = df.ColLabels()[j]
	}
	m := df.NRows()
	out := make([][]float64, k)
	nulls := make([][]bool, k)
	for a := range out {
		out[a] = make([]float64, k)
		nulls[a] = make([]bool, k)
	}
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			var sa, sb, sab float64
			n := 0
			for i := 0; i < m; i++ {
				if colsIn[a].IsNull(i) || colsIn[b].IsNull(i) {
					continue
				}
				x, y := colsIn[a].Value(i).Float(), colsIn[b].Value(i).Float()
				sa += x
				sb += y
				sab += x * y
				n++
			}
			if n < 2 {
				nulls[a][b], nulls[b][a] = true, true
				continue
			}
			c := (sab - sa*sb/float64(n)) / float64(n-1)
			out[a][b], out[b][a] = c, c
		}
	}
	colVecs := make([]vector.Vector, k)
	doms := make([]types.Domain, k)
	for b := 0; b < k; b++ {
		col := make([]float64, k)
		nl := make([]bool, k)
		hasNull := false
		for a := 0; a < k; a++ {
			col[a] = out[a][b]
			nl[a] = nulls[a][b]
			hasNull = hasNull || nl[a]
		}
		if !hasNull {
			nl = nil
		}
		colVecs[b] = vector.NewFloat(col, nl)
		doms[b] = types.Float
	}
	rowLab := vector.FromValues(types.Object, labels)
	return core.Build(colVecs, rowLab, labels, doms, df.Cache())
}

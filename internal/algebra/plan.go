package algebra

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
)

// Node is one operator in a logical dataframe query plan. Plans form DAGs:
// a statement's plan may reference sub-plans bound to earlier statements
// (Section 4.5, "Workflow Definitions").
type Node interface {
	// Children returns the input plans, left to right.
	Children() []Node
	// Describe renders the operator (without inputs) for plan printing.
	Describe() string
}

// Source is a leaf node: a bound dataframe.
type Source struct {
	// DF is the bound dataframe.
	DF *core.DataFrame
	// Name labels the source in plan renderings.
	Name string
}

// Children returns no inputs.
func (s *Source) Children() []Node { return nil }

// Describe renders the node.
func (s *Source) Describe() string {
	name := s.Name
	if name == "" {
		name = "df"
	}
	return fmt.Sprintf("SOURCE(%s, %dx%d)", name, s.DF.NRows(), s.DF.NCols())
}

// Selection eliminates rows, preserving input order. Exactly one of Where
// and Pred drives execution: a structured Where runs through the typed
// filter kernels (SelectWhere); an opaque Pred runs row at a time
// (SelectRows). When both are set, Where wins and Pred serves as the
// documentation-level fallback for tools that only understand predicates.
type Selection struct {
	Input Node
	// Where is the structured column-op-constant conjunction, when the
	// predicate has one.
	Where *expr.Where
	// Pred is the opaque row predicate (the fallback path).
	Pred expr.Predicate
	// Desc documents the predicate in plan renderings.
	Desc string
}

// Children returns the single input.
func (s *Selection) Children() []Node { return []Node{s.Input} }

// Describe renders the node.
func (s *Selection) Describe() string {
	if s.Desc == "" && s.Where != nil {
		return "SELECTION(" + s.Where.Describe() + ")"
	}
	return "SELECTION(" + s.Desc + ")"
}

// Projection eliminates columns, preserving both orders.
type Projection struct {
	Input Node
	// Cols are the retained column labels, in output order.
	Cols []string
}

// Children returns the single input.
func (p *Projection) Children() []Node { return []Node{p.Input} }

// Describe renders the node.
func (p *Projection) Describe() string {
	return "PROJECTION(" + strings.Join(p.Cols, ", ") + ")"
}

// Union concatenates two dataframes in order: the result is ordered by the
// left argument first, then the right (Table 1 †).
type Union struct {
	Left, Right Node
}

// Children returns both inputs.
func (u *Union) Children() []Node { return []Node{u.Left, u.Right} }

// Describe renders the node.
func (u *Union) Describe() string { return "UNION" }

// Difference returns rows of the left dataframe not present in the right,
// preserving the left order.
type Difference struct {
	Left, Right Node
}

// Children returns both inputs.
func (d *Difference) Children() []Node { return []Node{d.Left, d.Right} }

// Describe renders the node.
func (d *Difference) Describe() string { return "DIFFERENCE" }

// Join combines two dataframes by element. Kind JoinCross yields the
// ordered cross product (each left tuple associated in order with each
// right tuple).
type Join struct {
	Left, Right Node
	Kind        expr.JoinKind
	// On are the equi-join column labels shared by both sides; empty with
	// OnLabels=false and Kind=JoinCross means cross product.
	On []string
	// OnLabels joins on the row labels Rm instead of data columns, as in
	// pandas merge(left_index=True, right_index=True).
	OnLabels bool
}

// Children returns both inputs.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Describe renders the node.
func (j *Join) Describe() string {
	if j.Kind == expr.JoinCross {
		return "CROSS-PRODUCT"
	}
	on := strings.Join(j.On, ", ")
	if j.OnLabels {
		on = "row-labels"
	}
	return fmt.Sprintf("JOIN(%s, on=%s)", j.Kind, on)
}

// DropDuplicates removes duplicate rows, keeping the first occurrence in
// input order.
type DropDuplicates struct {
	Input Node
	// Subset restricts the duplicate test to these columns; nil means all.
	Subset []string
}

// Children returns the single input.
func (d *DropDuplicates) Children() []Node { return []Node{d.Input} }

// Describe renders the node.
func (d *DropDuplicates) Describe() string {
	if len(d.Subset) == 0 {
		return "DROP-DUPLICATES"
	}
	return "DROP-DUPLICATES(" + strings.Join(d.Subset, ", ") + ")"
}

// GroupBy groups identical key values and aggregates; it establishes a new
// order (by first appearance of each group, or key order when Sorted).
type GroupBy struct {
	Input Node
	Spec  expr.GroupBySpec
}

// Children returns the single input.
func (g *GroupBy) Children() []Node { return []Node{g.Input} }

// Describe renders the node.
func (g *GroupBy) Describe() string {
	aggs := make([]string, len(g.Spec.Aggs))
	for i, a := range g.Spec.Aggs {
		aggs[i] = a.Agg.String() + "(" + a.Col + ")"
	}
	return fmt.Sprintf("GROUPBY(keys=[%s], aggs=[%s])", strings.Join(g.Spec.Keys, ", "), strings.Join(aggs, ", "))
}

// Sort lexicographically orders rows, establishing a new order.
type Sort struct {
	Input Node
	Order expr.SortOrder
	// ByLabels sorts by the row labels rather than data columns.
	ByLabels bool
}

// Children returns the single input.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// Describe renders the node.
func (s *Sort) Describe() string {
	if s.ByLabels {
		return "SORT(row-labels)"
	}
	keys := make([]string, len(s.Order))
	for i, k := range s.Order {
		keys[i] = k.Col
		if k.Desc {
			keys[i] += " desc"
		}
	}
	return "SORT(" + strings.Join(keys, ", ") + ")"
}

// Rename changes column labels, preserving everything else.
type Rename struct {
	Input   Node
	Mapping map[string]string
}

// Children returns the single input.
func (r *Rename) Children() []Node { return []Node{r.Input} }

// Describe renders the node.
func (r *Rename) Describe() string { return fmt.Sprintf("RENAME(%d cols)", len(r.Mapping)) }

// Window applies a function via a sliding window in either direction.
type Window struct {
	Input Node
	Spec  expr.WindowSpec
}

// Children returns the single input.
func (w *Window) Children() []Node { return []Node{w.Input} }

// Describe renders the node.
func (w *Window) Describe() string {
	switch w.Spec.Kind {
	case expr.WindowRolling:
		return fmt.Sprintf("WINDOW(rolling %d, %s)", w.Spec.Size, w.Spec.Agg)
	case expr.WindowExpanding:
		return fmt.Sprintf("WINDOW(expanding, %s)", w.Spec.Agg)
	case expr.WindowShift:
		return fmt.Sprintf("WINDOW(shift %d)", w.Spec.Offset)
	case expr.WindowDiff:
		return fmt.Sprintf("WINDOW(diff %d)", w.Spec.Offset)
	}
	return "WINDOW"
}

// Transpose swaps data and metadata between rows and columns: the result is
// (Aᵀnm, Cn, Rm, null) with the schema left to be re-induced, unless Schema
// declares it (Section 5.1.2's df_t = TRANSPOSE(df, myschema) form).
type Transpose struct {
	Input Node
	// Schema optionally declares the output domains, skipping induction.
	Schema []types.Domain
}

// Children returns the single input.
func (t *Transpose) Children() []Node { return []Node{t.Input} }

// Describe renders the node.
func (t *Transpose) Describe() string { return "TRANSPOSE" }

// Map applies a function uniformly to every row.
type Map struct {
	Input Node
	Fn    expr.MapFn
}

// Children returns the single input.
func (m *Map) Children() []Node { return []Node{m.Input} }

// Describe renders the node.
func (m *Map) Describe() string { return "MAP(" + m.Fn.Name + ")" }

// ToLabels projects a data column out to become the row labels, replacing
// the old labels: data is promoted into metadata.
type ToLabels struct {
	Input Node
	// Col is the label of the column to promote.
	Col string
}

// Children returns the single input.
func (t *ToLabels) Children() []Node { return []Node{t.Input} }

// Describe renders the node.
func (t *ToLabels) Describe() string { return "TOLABELS(" + t.Col + ")" }

// FromLabels inserts the row labels as a new data column at position 0 and
// resets the labels to positional notation: metadata is demoted into data.
type FromLabels struct {
	Input Node
	// Label names the new column.
	Label string
}

// Children returns the single input.
func (f *FromLabels) Children() []Node { return []Node{f.Input} }

// Describe renders the node.
func (f *FromLabels) Describe() string { return "FROMLABELS(" + f.Label + ")" }

// Induce is the explicit schema-induction point: it applies S and the
// parsing functions to every unspecified column of its input. Making
// induction a plan node is what lets the optimizer defer, hoist, or elide it
// (Section 5.1).
type Induce struct {
	Input Node
}

// Children returns the single input.
func (i *Induce) Children() []Node { return []Node{i.Input} }

// Describe renders the node.
func (i *Induce) Describe() string { return "INDUCE-SCHEMA" }

// Limit is a physical convenience node (not part of the 14-operator
// algebra): it retains the ordered prefix (N>0) or suffix (N<0) of its
// input. Sessions use it to materialize head/tail views cheaply
// (Section 6.1.2).
type Limit struct {
	Input Node
	N     int
}

// Children returns the single input.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Describe renders the node.
func (l *Limit) Describe() string { return fmt.Sprintf("LIMIT(%d)", l.N) }

// Render pretty-prints a plan tree, one operator per line, children
// indented.
func Render(n Node) string {
	var b strings.Builder
	render(&b, n, 0)
	return b.String()
}

func render(b *strings.Builder, n Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		render(b, c, depth+1)
	}
}

// Walk visits every node of the plan in pre-order.
func Walk(n Node, visit func(Node)) {
	visit(n)
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// CountNodes returns the number of operators in the plan.
func CountNodes(n Node) int {
	count := 0
	Walk(n, func(Node) { count++ })
	return count
}

// OutputColumns infers the plan's output column labels without executing
// it; nil means the labels cannot be determined statically (transposes,
// joins, and row UDFs with undeclared outputs — every other operator is
// derivable). The query builder uses this to resolve column-set operations
// early, and the optimizer to prove label-sensitive rewrites sound.
func OutputColumns(n Node) []string {
	switch node := n.(type) {
	case *Source:
		return node.DF.ColNames()
	case *Scan:
		return node.Columns
	case *Projection:
		return node.Cols
	case *Rename:
		in := OutputColumns(node.Input)
		if in == nil {
			return nil
		}
		out := make([]string, len(in))
		for i, name := range in {
			if to, ok := node.Mapping[name]; ok {
				out[i] = to
			} else {
				out[i] = name
			}
		}
		return out
	case *Selection:
		return OutputColumns(node.Input)
	case *Sort:
		return OutputColumns(node.Input)
	case *DropDuplicates:
		return OutputColumns(node.Input)
	case *Limit:
		return OutputColumns(node.Input)
	case *TopK:
		return OutputColumns(node.Input)
	case *Induce:
		return OutputColumns(node.Input)
	case *Window:
		return OutputColumns(node.Input)
	case *Union:
		// UnionFrames aligns by label: left's columns in order, then
		// right-only labels appended at first appearance.
		left := OutputColumns(node.Left)
		right := OutputColumns(node.Right)
		if left == nil || right == nil {
			return nil
		}
		seen := make(map[string]bool, len(left))
		for _, name := range left {
			seen[name] = true
		}
		out := append([]string(nil), left...)
		for _, name := range right {
			if !seen[name] {
				out = append(out, name)
				seen[name] = true
			}
		}
		return out
	case *Difference:
		return OutputColumns(node.Left)
	case *Map:
		if node.Fn.OutCols == nil {
			return OutputColumns(node.Input)
		}
		out := make([]string, len(node.Fn.OutCols))
		for i, label := range node.Fn.OutCols {
			out[i] = label.String()
		}
		return out
	case *GroupBy:
		var out []string
		if !node.Spec.AsLabels {
			out = append(out, node.Spec.Keys...)
		}
		for _, a := range node.Spec.Aggs {
			out = append(out, a.OutName())
		}
		return out
	case *ToLabels:
		in := OutputColumns(node.Input)
		if in == nil {
			return nil
		}
		out := make([]string, 0, len(in))
		removed := false
		for _, name := range in {
			if !removed && name == node.Col {
				removed = true
				continue
			}
			out = append(out, name)
		}
		return out
	case *FromLabels:
		in := OutputColumns(node.Input)
		if in == nil {
			return nil
		}
		return append([]string{node.Label}, in...)
	}
	return nil
}

// Engine executes logical plans. The baseline (internal/eager) and MODIN
// (internal/modin) engines implement it; the query layer and public API are
// engine-agnostic.
type Engine interface {
	// Name identifies the engine ("pandas-baseline", "modin").
	Name() string
	// Execute evaluates the plan to a materialized dataframe.
	Execute(Node) (*core.DataFrame, error)
}

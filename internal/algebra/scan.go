package algebra

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
)

// Scan is a leaf node describing a re-openable CSV source that has not been
// materialized: the engine parses it morsel-by-morsel at execution time, so
// a file larger than memory streams through the plan band-by-band instead
// of being read whole at bind time (the out-of-core analog of Source).
type Scan struct {
	// Name labels the scan in plan renderings ("csv", or the file path).
	Name string
	// Path is the backing file path, "" for buffer-backed scans. Error
	// messages carry it so a failure names its source.
	Path string
	// Columns are the header column labels, read once when the query was
	// built; they make the scan's output schema statically known.
	Columns []string
	// Open returns a fresh reader positioned at the start of the input.
	// It is called once per execution, so a Scan plan stays re-runnable.
	Open func() (io.ReadCloser, error)
	// Data holds the raw input bytes for buffer-backed scans (nil for
	// file-backed ones). Open remains the execution path; Data exists so a
	// distributed coordinator can ship the input to workers, since the Open
	// closure itself cannot cross a process boundary.
	Data []byte
	// Options configure the CSV dialect.
	Options core.CSVOptions
	// SizeHint is the total input size in bytes (0 when unknown); the
	// scheduler uses it to pre-size the band grid.
	SizeHint int64
	// BandRows caps rows per parsed morsel; 0 selects the engine default.
	BandRows int
}

// Children returns no inputs.
func (s *Scan) Children() []Node { return nil }

// Describe renders the node.
func (s *Scan) Describe() string {
	name := s.Name
	if name == "" {
		name = "csv"
	}
	return fmt.Sprintf("SCAN(%s, %d cols)", name, len(s.Columns))
}

// Cursor opens the scan's source as a streaming CSV cursor.
func (s *Scan) Cursor() (*core.CSVCursor, error) {
	rc, err := s.Open()
	if err != nil {
		return nil, err
	}
	cur, err := core.NewCSVCursor(rc, s.Options)
	if err != nil {
		rc.Close()
		return nil, err
	}
	return cur, nil
}

// ReadAll materializes the scan's whole input as one frame — the in-memory
// fallback the eager engine uses. It parses through the same cursor as the
// streaming path, in a single band, so the two paths agree cell for cell.
func (s *Scan) ReadAll() (*core.DataFrame, error) {
	cur, err := s.Cursor()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	df, err := cur.NextBand(math.MaxInt)
	if err == io.EOF {
		return cur.Empty(), nil
	}
	return df, err
}

package algebra

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dferrors"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
	"repro/internal/vector"
)

// TransposeFrame implements TRANSPOSE: given DF = (Amn, Rm, Cn, Dn) it
// returns (Aᵀnm, Cn, Rm, null). The output schema is left unspecified and
// re-induced lazily, unless declared explicitly (the
// TRANSPOSE(df, myschema) form of Section 5.1.2). For homogeneous inputs
// the typed representation is preserved, so a double transpose recovers the
// original Dn without re-induction.
func TransposeFrame(df *core.DataFrame, declared []types.Domain) (*core.DataFrame, error) {
	m, n := df.NRows(), df.NCols()
	if declared != nil && len(declared) != m {
		return nil, fmt.Errorf("algebra: transpose declared schema has %d domains, want %d", len(declared), m)
	}

	// The output's column labels are the input's row labels and
	// vice-versa: data and metadata swap axes.
	outColLab := make([]types.Value, m)
	rowLabels := df.RowLabels()
	for i := 0; i < m; i++ {
		outColLab[i] = rowLabels.Value(i)
	}
	// Labels live in Dom like data does: keep the narrowest domain so a
	// double transpose recovers the original Rm exactly.
	outRowLab := buildColumn(df.ColLabels())

	// TRANSPOSE swaps the stored array without invoking the schema
	// induction function S: inducing types on tiny sub-frames (as blocks
	// of a partitioned transpose) would mis-type data that only the full
	// columns determine. The typed fast path applies only when the stored
	// representation is already homogeneous, which is what lets a double
	// transpose of a typed frame recover Dn without re-induction.
	storageHomogeneous := n > 0
	var storageDom types.Domain
	if n > 0 {
		storageDom = df.Col(0).Domain()
		for j := 1; j < n; j++ {
			if df.Col(j).Domain() != storageDom {
				storageHomogeneous = false
				break
			}
		}
	}

	outCols := make([]vector.Vector, m)
	outDoms := make([]types.Domain, m)
	for i := 0; i < m; i++ {
		dom := types.Object
		outDoms[i] = types.Unspecified
		if declared != nil {
			dom = declared[i]
			outDoms[i] = dom
		} else if storageHomogeneous {
			dom = storageDom
			if dom != types.Object {
				outDoms[i] = dom
			}
		}
		b := vector.NewBuilder(dom, n)
		for j := 0; j < n; j++ {
			b.Append(df.Col(j).Value(i))
		}
		outCols[i] = b.Build()
	}
	return core.Build(outCols, outRowLab, outColLab, outDoms, df.Cache())
}

// MapFrame implements MAP: fn applied uniformly to every row, producing an
// output row of fixed arity. Output labels come from fn.OutCols (defaulting
// to the input labels), and declared fn.OutDoms skip schema induction on
// the result (Section 5.1.1).
func MapFrame(df *core.DataFrame, fn expr.MapFn) (*core.DataFrame, error) {
	if err := fn.Validate(); err != nil {
		return nil, err
	}
	if fn.Elementwise != nil {
		return mapElementwise(df, fn)
	}
	rowFn := fn.Fn
	if rowFn == nil {
		rowFn = fn.GroupFn
	}

	outCols := fn.OutCols
	if outCols == nil {
		outCols = df.ColLabels()
	}
	arity := len(outCols)

	rv := newRowView(df)
	outVals := make([][]types.Value, arity)
	for j := range outVals {
		outVals[j] = make([]types.Value, 0, df.NRows())
	}
	for i := 0; i < df.NRows(); i++ {
		row := rowFn(rv.at(i))
		if len(row) != arity {
			return nil, fmt.Errorf("algebra: MAP %q returned %d values at row %d, want fixed arity %d", fn.Name, len(row), i, arity)
		}
		for j, v := range row {
			outVals[j] = append(outVals[j], v)
		}
	}

	cols := make([]vector.Vector, arity)
	doms := make([]types.Domain, arity)
	for j := range cols {
		if fn.OutDoms != nil {
			doms[j] = fn.OutDoms[j]
			cols[j] = vector.FromValues(doms[j], outVals[j])
		} else {
			cols[j] = buildColumn(outVals[j])
			doms[j] = types.Unspecified
		}
	}
	return core.Build(cols, df.RowLabels(), outCols, doms, df.Cache())
}

// mapElementwise runs a per-cell MAP columnar, without materializing rows.
func mapElementwise(df *core.DataFrame, fn expr.MapFn) (*core.DataFrame, error) {
	n := df.NCols()
	cols := make([]vector.Vector, n)
	doms := make([]types.Domain, n)
	for j := 0; j < n; j++ {
		in := df.TypedCol(j)
		vals := make([]types.Value, in.Len())
		for i := range vals {
			vals[i] = fn.Elementwise(in.Value(i))
		}
		if fn.OutDoms != nil {
			doms[j] = fn.OutDoms[0]
			cols[j] = vector.FromValues(doms[j], vals)
		} else {
			cols[j] = buildColumn(vals)
			doms[j] = types.Unspecified
		}
	}
	labels := fn.OutCols
	if labels == nil {
		labels = df.ColLabels()
	}
	if len(labels) != n {
		return nil, fmt.Errorf("algebra: elementwise MAP %q cannot change arity (%d labels for %d columns)", fn.Name, len(labels), n)
	}
	return core.Build(cols, df.RowLabels(), labels, doms, df.Cache())
}

// ToLabelsFrame implements TOLABELS: project column L out of the data and
// install it as the row labels, replacing the old labels. Data becomes
// metadata.
func ToLabelsFrame(df *core.DataFrame, col string) (*core.DataFrame, error) {
	j := df.ColIndex(col)
	if j < 0 {
		return nil, fmt.Errorf("algebra: tolabels of %w %q", dferrors.ErrUnknownColumn, col)
	}
	labels := df.TypedCol(j)
	out := df.DropColumn(j)
	return out.WithRowLabels(labels)
}

// FromLabelsFrame implements FROMLABELS: insert the row labels as a new
// data column at position 0 under the given label, and reset the row labels
// to positional notation Pm = (0, ..., m-1). Metadata becomes data; the new
// column's domain starts unspecified until induced by S.
func FromLabelsFrame(df *core.DataFrame, label string) (*core.DataFrame, error) {
	m := df.NRows()
	cols := make([]vector.Vector, 0, df.NCols()+1)
	cols = append(cols, df.RowLabels())
	cols = append(cols, df.Columns()...)
	labels := make([]types.Value, 0, df.NCols()+1)
	labels = append(labels, types.String(label))
	labels = append(labels, df.ColLabels()...)
	doms := make([]types.Domain, 0, df.NCols()+1)
	doms = append(doms, types.Unspecified)
	doms = append(doms, df.Domains()...)
	return core.Build(cols, vector.Range(0, int(m)), labels, doms, df.Cache())
}

// WindowFrame implements WINDOW: a sliding-window function applied in
// either direction. Because dataframes are inherently ordered, no ORDER BY
// is required (Table 1).
func WindowFrame(df *core.DataFrame, spec expr.WindowSpec) (*core.DataFrame, error) {
	offset := spec.Offset
	if offset == 0 {
		offset = 1
	}
	targets := spec.Cols
	if targets == nil {
		targets = df.ColNames()
	}
	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		if df.ColIndex(t) < 0 {
			return nil, fmt.Errorf("algebra: window over %w %q", dferrors.ErrUnknownColumn, t)
		}
		targetSet[t] = true
	}

	n := df.NCols()
	cols := make([]vector.Vector, n)
	doms := make([]types.Domain, n)
	for j := 0; j < n; j++ {
		if !targetSet[df.ColName(j)] {
			cols[j] = df.Col(j)
			doms[j] = df.DeclaredDomain(j)
			continue
		}
		in := df.TypedCol(j)
		out, dom, err := windowColumn(in, spec, offset)
		if err != nil {
			return nil, fmt.Errorf("algebra: window over %q: %w", df.ColName(j), err)
		}
		cols[j] = out
		doms[j] = dom
	}
	return core.Build(cols, df.RowLabels(), df.ColLabels(), doms, df.Cache())
}

func windowColumn(in vector.Vector, spec expr.WindowSpec, offset int) (vector.Vector, types.Domain, error) {
	m := in.Len()
	vals := make([]types.Value, m)

	// index maps output position to logical scan position so Reverse
	// windows reuse the forward implementation.
	pos := func(i int) int {
		if spec.Reverse {
			return m - 1 - i
		}
		return i
	}

	switch spec.Kind {
	case expr.WindowShift:
		for i := 0; i < m; i++ {
			src := i - offset
			if src < 0 || src >= m {
				vals[pos(i)] = types.Null()
			} else {
				vals[pos(i)] = in.Value(pos(src))
			}
		}
		return buildColumn(vals), types.Unspecified, nil

	case expr.WindowDiff:
		if !in.Domain().Numeric() {
			return in, types.Unspecified, nil // non-numeric columns pass through
		}
		for i := 0; i < m; i++ {
			src := i - offset
			if src < 0 || src >= m || in.IsNull(pos(i)) || in.IsNull(pos(src)) {
				vals[pos(i)] = types.NullValue(types.Float)
			} else {
				vals[pos(i)] = types.FloatValue(in.Value(pos(i)).Float() - in.Value(pos(src)).Float())
			}
		}
		return vector.FromValues(types.Float, vals), types.Float, nil

	case expr.WindowExpanding:
		acc := expr.NewAccumulator(spec.Agg)
		minP := spec.MinPeriods
		if minP <= 0 {
			minP = 1
		}
		seen := 0
		for i := 0; i < m; i++ {
			v := in.Value(pos(i))
			acc.Add(v)
			if !v.IsNull() {
				seen++
			}
			if seen < minP {
				vals[pos(i)] = types.Null()
			} else {
				vals[pos(i)] = acc.Result()
			}
		}
		return buildColumn(vals), types.Unspecified, nil

	case expr.WindowRolling:
		if spec.Size <= 0 {
			return nil, types.Unspecified, fmt.Errorf("rolling window requires positive size, got %d", spec.Size)
		}
		minP := spec.MinPeriods
		if minP <= 0 {
			minP = spec.Size
		}
		for i := 0; i < m; i++ {
			lo := i - spec.Size + 1
			if lo < 0 {
				lo = 0
			}
			acc := expr.NewAccumulator(spec.Agg)
			nonNull := 0
			for k := lo; k <= i; k++ {
				v := in.Value(pos(k))
				acc.Add(v)
				if !v.IsNull() {
					nonNull++
				}
			}
			if i+1 < minP || nonNull < minP {
				vals[pos(i)] = types.Null()
			} else {
				vals[pos(i)] = acc.Result()
			}
		}
		return buildColumn(vals), types.Unspecified, nil
	}
	return nil, types.Unspecified, fmt.Errorf("unknown window kind %d", spec.Kind)
}

// InduceFrame forces schema induction and parsing on every unspecified
// column, returning a fully-typed frame. It is the "apply S now" operation
// whose placement the optimizer reasons about (Section 5.1.3).
func InduceFrame(df *core.DataFrame) *core.DataFrame {
	cols := make([]vector.Vector, df.NCols())
	doms := make([]types.Domain, df.NCols())
	for j := 0; j < df.NCols(); j++ {
		cols[j] = df.TypedCol(j)
		doms[j] = df.Domain(j)
	}
	out, err := core.Build(cols, df.RowLabels(), df.ColLabels(), doms, df.Cache())
	if err != nil {
		panic(err) // shape-preserving by construction
	}
	return out
}

// Induce is re-exported for callers that want the bare induction function.
var _ = schema.Induce

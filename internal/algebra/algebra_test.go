package algebra

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// salesDF is the narrow SALES table of Figure 5.
func salesDF(t *testing.T) *core.DataFrame {
	t.Helper()
	return core.MustFromRecords(
		[]string{"Year", "Month", "Sales"},
		[][]any{
			{2001, "Jan", 100},
			{2001, "Feb", 110},
			{2001, "Mar", 120},
			{2002, "Jan", 150},
			{2002, "Feb", 200},
			{2002, "Mar", 250},
			{2003, "Jan", 300},
			{2003, "Feb", 310},
		},
	)
}

func peopleDF(t *testing.T) *core.DataFrame {
	t.Helper()
	return core.MustFromRecords(
		[]string{"name", "dept", "salary"},
		[][]any{
			{"ann", "eng", 100},
			{"bob", "ops", 80},
			{"cat", "eng", 120},
			{"dan", "ops", 90},
			{"eve", "eng", 110},
		},
	)
}

func TestSelectionPreservesOrder(t *testing.T) {
	df := peopleDF(t)
	out := SelectRows(df, expr.ColEquals("dept", types.String("eng")))
	if out.NRows() != 3 {
		t.Fatalf("rows = %d", out.NRows())
	}
	want := []string{"ann", "cat", "eve"}
	for i, w := range want {
		if out.Value(i, 0).Str() != w {
			t.Errorf("row %d = %s, want %s", i, out.Value(i, 0).Str(), w)
		}
	}
	// Row labels are parent labels, not renumbered.
	if out.RowLabels().Value(1).Int() != 2 {
		t.Error("selection should keep parent row labels")
	}
}

func TestSelectPositions(t *testing.T) {
	df := peopleDF(t)
	out, err := SelectPositions(df, []int{4, 0})
	if err != nil || out.Value(0, 0).Str() != "eve" {
		t.Errorf("positional selection wrong: %v", err)
	}
	if _, err := SelectPositions(df, []int{9}); err == nil {
		t.Error("out-of-range position should fail")
	}
}

func TestProjection(t *testing.T) {
	df := peopleDF(t)
	out, err := Project(df, []string{"salary", "name"})
	if err != nil || out.NCols() != 2 || out.ColName(0) != "salary" {
		t.Fatalf("projection wrong: %v", err)
	}
	if _, err := Project(df, []string{"ghost"}); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestUnionOrderAndOuterSchema(t *testing.T) {
	a := core.MustFromRecords([]string{"x", "y"}, [][]any{{1, "a"}, {2, "b"}})
	b := core.MustFromRecords([]string{"x", "z"}, [][]any{{3, true}})
	out, err := UnionFrames(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 3 || out.NCols() != 3 {
		t.Fatalf("shape = %dx%d", out.NRows(), out.NCols())
	}
	// Left rows first.
	if out.Value(0, 0).Int() != 1 || out.Value(2, 0).Int() != 3 {
		t.Error("union order wrong")
	}
	// Missing cells are null.
	if !out.Value(2, 1).IsNull() || !out.Value(0, 2).IsNull() {
		t.Error("outer union should null-fill")
	}
}

func TestDifference(t *testing.T) {
	a := core.MustFromRecords([]string{"x"}, [][]any{{1}, {2}, {3}, {2}})
	b := core.MustFromRecords([]string{"x"}, [][]any{{2}})
	out, err := DifferenceFrames(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 2 || out.Value(0, 0).Int() != 1 || out.Value(1, 0).Int() != 3 {
		t.Errorf("difference wrong:\n%s", out)
	}
	if _, err := DifferenceFrames(a, core.MustFromRecords([]string{"y"}, [][]any{{1}})); err == nil {
		t.Error("schema mismatch should fail")
	}
}

func TestCrossProductNestedOrder(t *testing.T) {
	a := core.MustFromRecords([]string{"l"}, [][]any{{"a"}, {"b"}})
	b := core.MustFromRecords([]string{"r"}, [][]any{{1}, {2}, {3}})
	out, err := JoinFrames(a, b, expr.JoinCross, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 6 {
		t.Fatalf("rows = %d", out.NRows())
	}
	// Nested order: each left tuple with each right tuple in order.
	wantL := []string{"a", "a", "a", "b", "b", "b"}
	wantR := []int64{1, 2, 3, 1, 2, 3}
	for i := range wantL {
		if out.Value(i, 0).Str() != wantL[i] || out.Value(i, 1).Int() != wantR[i] {
			t.Errorf("row %d = (%s,%d)", i, out.Value(i, 0).Str(), out.Value(i, 1).Int())
		}
	}
}

func TestInnerJoinOrderAndSuffixes(t *testing.T) {
	left := core.MustFromRecords([]string{"k", "v"}, [][]any{{"a", 1}, {"b", 2}, {"c", 3}})
	right := core.MustFromRecords([]string{"k", "v"}, [][]any{{"b", 20}, {"a", 10}, {"a", 11}})
	out, err := JoinFrames(left, right, expr.JoinInner, []string{"k"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 3 {
		t.Fatalf("rows = %d\n%s", out.NRows(), out)
	}
	// Left order first; a's two right matches in right order.
	if out.Value(0, 0).Str() != "a" || out.Value(1, 0).Str() != "a" || out.Value(2, 0).Str() != "b" {
		t.Errorf("join order wrong:\n%s", out)
	}
	if out.ColIndex("v_x") < 0 || out.ColIndex("v_y") < 0 {
		t.Errorf("collision suffixes missing: %v", out.ColNames())
	}
	if out.Value(0, out.ColIndex("v_y")).Int() != 10 || out.Value(1, out.ColIndex("v_y")).Int() != 11 {
		t.Errorf("right match order wrong:\n%s", out)
	}
}

func TestLeftRightOuterJoin(t *testing.T) {
	left := core.MustFromRecords([]string{"k", "l"}, [][]any{{"a", 1}, {"x", 2}})
	right := core.MustFromRecords([]string{"k", "r"}, [][]any{{"a", 10}, {"y", 20}})

	lj, err := JoinFrames(left, right, expr.JoinLeft, []string{"k"}, false)
	if err != nil || lj.NRows() != 2 {
		t.Fatalf("left join: %v, %d rows", err, lj.NRows())
	}
	if !lj.Value(1, lj.ColIndex("r")).IsNull() {
		t.Error("unmatched left row should null-extend")
	}

	rj, err := JoinFrames(left, right, expr.JoinRight, []string{"k"}, false)
	if err != nil || rj.NRows() != 2 {
		t.Fatalf("right join: %v", err)
	}
	oj, err := JoinFrames(left, right, expr.JoinOuter, []string{"k"}, false)
	if err != nil || oj.NRows() != 3 {
		t.Fatalf("outer join: %v, %d rows", err, oj.NRows())
	}
	// Outer join fills the key from the right side for unmatched rights.
	if oj.Value(2, oj.ColIndex("k")).Str() != "y" {
		t.Errorf("outer join key fill wrong:\n%s", oj)
	}
}

func TestJoinOnLabels(t *testing.T) {
	left := core.MustFromRecords([]string{"a"}, [][]any{{1}, {2}, {3}})
	right := core.MustFromRecords([]string{"b"}, [][]any{{10}, {20}, {30}})
	// Give right reversed labels 2,1,0.
	right, err := right.WithRowLabels(vector.NewInt([]int64{2, 1, 0}, nil))
	if err != nil {
		t.Fatal(err)
	}
	out, err := JoinFrames(left, right, expr.JoinInner, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 3 {
		t.Fatalf("rows = %d", out.NRows())
	}
	// Label 0 row of left (a=1) joins label 0 row of right (b=30).
	if out.Value(0, 0).Int() != 1 || out.Value(0, 1).Int() != 30 {
		t.Errorf("label join wrong:\n%s", out)
	}
	// Result keeps the label.
	if out.RowLabels().Value(0).Int() != 0 {
		t.Error("label join should keep labels")
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	left := core.MustFromRecords([]string{"k", "l"}, [][]any{{nil, 1}, {"a", 2}})
	right := core.MustFromRecords([]string{"k", "r"}, [][]any{{nil, 10}, {"a", 20}})
	out, err := JoinFrames(left, right, expr.JoinInner, []string{"k"}, false)
	if err != nil || out.NRows() != 1 {
		t.Fatalf("null keys must not match: %v rows=%d", err, out.NRows())
	}
}

func TestDropDuplicates(t *testing.T) {
	df := core.MustFromRecords([]string{"a", "b"}, [][]any{
		{1, "x"}, {1, "x"}, {2, "x"}, {1, "y"},
	})
	out, err := DropDuplicatesFrame(df, nil)
	if err != nil || out.NRows() != 3 {
		t.Fatalf("dropdup all cols: %v rows=%d", err, out.NRows())
	}
	out, err = DropDuplicatesFrame(df, []string{"b"})
	if err != nil || out.NRows() != 2 {
		t.Fatalf("dropdup subset: %v rows=%d", err, out.NRows())
	}
	// First occurrence kept, in order.
	if out.Value(0, 0).Int() != 1 || out.Value(1, 1).Str() != "y" {
		t.Error("dropdup should keep first occurrences")
	}
	if _, err := DropDuplicatesFrame(df, []string{"zzz"}); err == nil {
		t.Error("unknown subset column should fail")
	}
}

func TestRename(t *testing.T) {
	df := peopleDF(t)
	out, err := RenameFrame(df, map[string]string{"dept": "team"})
	if err != nil || out.ColIndex("team") != 1 || out.ColIndex("dept") != -1 {
		t.Errorf("rename wrong: %v", err)
	}
	if _, err := RenameFrame(df, map[string]string{"ghost": "x"}); err == nil {
		t.Error("renaming missing column should fail")
	}
}

func TestSortStableAndDesc(t *testing.T) {
	df := core.MustFromRecords([]string{"k", "seq"}, [][]any{
		{2, 0}, {1, 1}, {2, 2}, {1, 3},
	})
	out, err := SortFrame(df, expr.SortOrder{{Col: "k"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	wantSeq := []int64{1, 3, 0, 2} // stable within equal keys
	for i, w := range wantSeq {
		if out.Value(i, 1).Int() != w {
			t.Errorf("row %d seq = %d, want %d", i, out.Value(i, 1).Int(), w)
		}
	}
	desc, err := SortFrame(df, expr.SortOrder{{Col: "k", Desc: true}, {Col: "seq", Desc: true}}, false)
	if err != nil || desc.Value(0, 1).Int() != 2 {
		t.Error("desc sort wrong")
	}
	byLab, err := SortFrame(out, expr.SortOrder{}, true)
	if err != nil || byLab.Value(0, 1).Int() != 0 {
		t.Error("sort by labels should restore original order")
	}
}

func TestLimitPrefixSuffix(t *testing.T) {
	df := peopleDF(t)
	if LimitFrame(df, 2).NRows() != 2 || LimitFrame(df, 2).Value(0, 0).Str() != "ann" {
		t.Error("prefix wrong")
	}
	tail := LimitFrame(df, -2)
	if tail.NRows() != 2 || tail.Value(1, 0).Str() != "eve" {
		t.Error("suffix wrong")
	}
	if LimitFrame(df, 100).NRows() != 5 || LimitFrame(df, -100).NRows() != 5 {
		t.Error("over-limit should clamp")
	}
}

func TestGroupByAggregates(t *testing.T) {
	df := peopleDF(t)
	out, err := GroupByFrame(df, expr.GroupBySpec{
		Keys: []string{"dept"},
		Aggs: []expr.AggSpec{
			{Col: "salary", Agg: expr.AggCount, As: "n"},
			{Col: "salary", Agg: expr.AggSum, As: "total"},
			{Col: "salary", Agg: expr.AggMean, As: "avg"},
			{Col: "salary", Agg: expr.AggMin, As: "lo"},
			{Col: "salary", Agg: expr.AggMax, As: "hi"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 2 {
		t.Fatalf("groups = %d", out.NRows())
	}
	// First-appearance order: eng then ops.
	if out.Value(0, 0).Str() != "eng" || out.Value(1, 0).Str() != "ops" {
		t.Errorf("group order wrong:\n%s", out)
	}
	if out.Value(0, out.ColIndex("n")).Int() != 3 {
		t.Error("count wrong")
	}
	if out.Value(0, out.ColIndex("total")).Float() != 330 {
		t.Error("sum wrong")
	}
	if out.Value(0, out.ColIndex("avg")).Float() != 110 {
		t.Error("mean wrong")
	}
	if out.Value(0, out.ColIndex("lo")).Int() != 100 || out.Value(0, out.ColIndex("hi")).Int() != 120 {
		t.Error("min/max wrong")
	}
}

func TestGroupByAsLabels(t *testing.T) {
	df := peopleDF(t)
	out, err := GroupByFrame(df, expr.GroupBySpec{
		Keys:     []string{"dept"},
		Aggs:     []expr.AggSpec{{Col: "salary", Agg: expr.AggSum, As: "total"}},
		AsLabels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NCols() != 1 {
		t.Errorf("AsLabels should drop key columns: %v", out.ColNames())
	}
	if out.RowLabels().Value(0).Str() != "eng" {
		t.Error("keys should become row labels")
	}
}

func TestGroupByNullsFormOneGroup(t *testing.T) {
	df := core.MustFromRecords([]string{"k", "v"}, [][]any{
		{nil, 1}, {"a", 2}, {nil, 3},
	})
	out, err := GroupByFrame(df, expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum, As: "s"}},
	})
	if err != nil || out.NRows() != 2 {
		t.Fatalf("null grouping: %v rows=%d", err, out.NRows())
	}
	if out.Value(0, 1).Float() != 4 {
		t.Error("null group should aggregate 1+3")
	}
}

func TestGroupBySortedStreamingMatchesHash(t *testing.T) {
	df := salesDF(t) // already sorted by Year
	spec := expr.GroupBySpec{
		Keys: []string{"Year"},
		Aggs: []expr.AggSpec{{Col: "Sales", Agg: expr.AggSum, As: "total"}},
	}
	hash, err := GroupByFrame(df, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Sorted = true
	stream, err := GroupByFrame(df, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hash.Equal(stream) {
		t.Errorf("sorted streaming != hash:\n%s\nvs\n%s", hash, stream)
	}
}

func TestGroupByCollectComposite(t *testing.T) {
	df := salesDF(t)
	out, err := GroupByFrame(df, expr.GroupBySpec{
		Keys: []string{"Year"},
		Aggs: []expr.AggSpec{{Col: "Sales", Agg: expr.AggCollect}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 3 {
		t.Fatalf("groups = %d", out.NRows())
	}
	comp := out.Value(0, out.ColIndex("Sales_collect"))
	sub, ok := comp.CompositePayload().(*core.DataFrame)
	if !ok {
		t.Fatalf("collect cell is %T", comp.CompositePayload())
	}
	// The 2001 group holds its three (Month, Sales) rows, keys excluded.
	if sub.NRows() != 3 || sub.ColIndex("Month") < 0 || sub.ColIndex("Year") >= 0 {
		t.Errorf("collect sub-frame wrong:\n%s", sub)
	}
}

func TestGroupPartialMergeEqualsWhole(t *testing.T) {
	df := peopleDF(t)
	spec := expr.GroupBySpec{
		Keys: []string{"dept"},
		Aggs: []expr.AggSpec{
			{Col: "salary", Agg: expr.AggSum, As: "s"},
			{Col: "salary", Agg: expr.AggStd, As: "sd"},
			{Col: "salary", Agg: expr.AggCountDistinct, As: "d"},
		},
	}
	whole := NewGroupPartial(spec)
	if err := whole.AddFrame(df); err != nil {
		t.Fatal(err)
	}
	wantDF, err := whole.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	split := NewGroupPartial(spec)
	other := NewGroupPartial(spec)
	if err := split.AddFrame(df.SliceRows(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := other.AddFrame(df.SliceRows(2, 5)); err != nil {
		t.Fatal(err)
	}
	split.Merge(other)
	gotDF, err := split.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !wantDF.Equal(gotDF) {
		t.Errorf("partial merge mismatch:\n%s\nvs\n%s", wantDF, gotDF)
	}
	if split.NumGroups() != 2 {
		t.Error("NumGroups wrong")
	}
}

func TestWindowShiftDiffCum(t *testing.T) {
	df := core.MustFromRecords([]string{"v"}, [][]any{{1}, {3}, {6}, {10}})

	sh, err := WindowFrame(df, expr.WindowSpec{Kind: expr.WindowShift, Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sh.Value(0, 0).IsNull() || sh.Value(1, 0).Int() != 1 {
		t.Errorf("shift wrong:\n%s", sh)
	}

	di, err := WindowFrame(df, expr.WindowSpec{Kind: expr.WindowDiff})
	if err != nil {
		t.Fatal(err)
	}
	if !di.Value(0, 0).IsNull() || di.Value(1, 0).Float() != 2 || di.Value(3, 0).Float() != 4 {
		t.Errorf("diff wrong:\n%s", di)
	}

	cm, err := WindowFrame(df, expr.WindowSpec{Kind: expr.WindowExpanding, Agg: expr.AggMax})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Value(3, 0).Int() != 10 || cm.Value(0, 0).Int() != 1 {
		t.Errorf("cummax wrong:\n%s", cm)
	}

	cs, err := WindowFrame(df, expr.WindowSpec{Kind: expr.WindowExpanding, Agg: expr.AggSum})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Value(3, 0).Float() != 20 {
		t.Errorf("cumsum wrong:\n%s", cs)
	}
}

func TestWindowRollingMean(t *testing.T) {
	df := core.MustFromRecords([]string{"v"}, [][]any{{1}, {2}, {3}, {4}})
	out, err := WindowFrame(df, expr.WindowSpec{Kind: expr.WindowRolling, Size: 2, Agg: expr.AggMean})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Value(0, 0).IsNull() {
		t.Error("first rolling cell should be null (min periods)")
	}
	if out.Value(1, 0).Float() != 1.5 || out.Value(3, 0).Float() != 3.5 {
		t.Errorf("rolling mean wrong:\n%s", out)
	}
	if _, err := WindowFrame(df, expr.WindowSpec{Kind: expr.WindowRolling, Agg: expr.AggMean}); err == nil {
		t.Error("rolling without size should fail")
	}
}

func TestWindowReverse(t *testing.T) {
	df := core.MustFromRecords([]string{"v"}, [][]any{{1}, {2}, {3}})
	out, err := WindowFrame(df, expr.WindowSpec{Kind: expr.WindowShift, Offset: 1, Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	// Reverse shift pulls values upward: last becomes null.
	if out.Value(0, 0).Int() != 2 || !out.Value(2, 0).IsNull() {
		t.Errorf("reverse shift wrong:\n%s", out)
	}
}

func TestTransposeDefinition(t *testing.T) {
	df := core.MustFromRecords([]string{"a", "b"}, [][]any{{1, "x"}, {2, "y"}, {3, "z"}})
	tr, err := TransposeFrame(df, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NRows() != 2 || tr.NCols() != 3 {
		t.Fatalf("transposed shape = %dx%d", tr.NRows(), tr.NCols())
	}
	// Row labels become column labels and vice versa.
	if tr.RowLabels().Value(0).Str() != "a" || tr.ColName(0) != "0" {
		t.Errorf("label swap wrong:\n%s", tr)
	}
	// Cell (i,j) moves to (j,i); heterogeneous data re-renders via Σ*.
	if tr.Value(0, 2).Str() != "3" || tr.Value(1, 0).Str() != "x" {
		t.Errorf("cells wrong:\n%s", tr)
	}
}

func TestDoubleTransposeRecoversFrame(t *testing.T) {
	df := core.MustFromRecords([]string{"a", "b"}, [][]any{{1, 4}, {2, 5}, {3, 6}})
	once, err := TransposeFrame(df, nil)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := TransposeFrame(once, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !df.Equal(twice) {
		t.Errorf("T∘T should be identity:\n%s\nvs\n%s", df, twice)
	}
	// Homogeneous input keeps its domain through transpose.
	if once.Domain(0) != types.Int {
		t.Errorf("homogeneous transpose domain = %v", once.Domain(0))
	}
}

func TestTransposeDeclaredSchema(t *testing.T) {
	df := core.MustFromRecords([]string{"a", "b"}, [][]any{{"1", "2"}})
	tr, err := TransposeFrame(df, []types.Domain{types.Int})
	if err != nil {
		t.Fatal(err)
	}
	if tr.DeclaredDomain(0) != types.Int || tr.Value(0, 0).Int() != 1 {
		t.Error("declared schema should skip induction and parse")
	}
	if _, err := TransposeFrame(df, []types.Domain{types.Int, types.Int}); err == nil {
		t.Error("wrong declared schema length should fail")
	}
}

func TestMapRowFnChangesArity(t *testing.T) {
	df := core.MustFromRecords([]string{"a", "b"}, [][]any{{1, 2}, {3, 4}})
	fn := expr.MapFn{
		Name:    "sum-and-product",
		OutCols: []types.Value{types.String("sum"), types.String("prod")},
		OutDoms: []types.Domain{types.Int, types.Int},
		Fn: func(r expr.Row) []types.Value {
			a, b := r.Value(0).Int(), r.Value(1).Int()
			return []types.Value{types.IntValue(a + b), types.IntValue(a * b)}
		},
	}
	out, err := MapFrame(df, fn)
	if err != nil {
		t.Fatal(err)
	}
	if out.NCols() != 2 || out.Value(1, 0).Int() != 7 || out.Value(1, 1).Int() != 12 {
		t.Errorf("map wrong:\n%s", out)
	}
	// Declared domains skip induction.
	if out.DeclaredDomain(0) != types.Int {
		t.Error("OutDoms should set declared domains")
	}
	// Row labels survive MAP.
	if out.RowLabels().Value(1).Int() != 1 {
		t.Error("map should keep row labels")
	}
}

func TestMapUniformArityEnforced(t *testing.T) {
	df := core.MustFromRecords([]string{"a"}, [][]any{{1}, {2}})
	fn := expr.MapFn{
		Name:    "ragged",
		OutCols: []types.Value{types.String("x")},
		Fn: func(r expr.Row) []types.Value {
			if r.Position() == 0 {
				return []types.Value{types.IntValue(1)}
			}
			return []types.Value{types.IntValue(1), types.IntValue(2)}
		},
	}
	if _, err := MapFrame(df, fn); err == nil {
		t.Error("non-uniform arity should fail")
	}
	if _, err := MapFrame(df, expr.MapFn{Name: "none"}); err == nil {
		t.Error("MapFn with no function should fail")
	}
}

func TestMapElementwiseIsNullFillNA(t *testing.T) {
	df := core.MustFromRecords([]string{"a", "b"}, [][]any{{1, nil}, {nil, "x"}})
	isnull, err := MapFrame(df, IsNullFn())
	if err != nil {
		t.Fatal(err)
	}
	if isnull.Value(0, 0).Bool() || !isnull.Value(0, 1).Bool() {
		t.Errorf("isnull wrong:\n%s", isnull)
	}
	if isnull.DeclaredDomain(0) != types.Bool {
		t.Error("isnull output domain should be declared Bool")
	}
	filled, err := MapFrame(df, FillNAFn(types.IntValue(0)))
	if err != nil {
		t.Fatal(err)
	}
	if filled.Value(1, 0).Int() != 0 || filled.Value(1, 1).Str() != "x" {
		t.Errorf("fillna wrong:\n%s", filled)
	}
}

func TestStrUpperAndNormalize(t *testing.T) {
	df := core.MustFromRecords([]string{"s"}, [][]any{{"abc"}, {nil}})
	up, err := MapFrame(df, StrUpperFn())
	if err != nil || up.Value(0, 0).Str() != "ABC" || !up.Value(1, 0).IsNull() {
		t.Errorf("str.upper wrong: %v", err)
	}

	nf := core.MustFromRecords([]string{"x", "y", "tag"}, [][]any{{1.0, 3.0, "a"}, {2.0, 2.0, "b"}})
	doms := []types.Domain{nf.Domain(0), nf.Domain(1), nf.Domain(2)}
	norm, err := MapFrame(nf, NormalizeFloatsFn(doms))
	if err != nil {
		t.Fatal(err)
	}
	if norm.Value(0, 0).Float() != 0.25 || norm.Value(0, 1).Float() != 0.75 {
		t.Errorf("normalize wrong:\n%s", norm)
	}
	if norm.Value(0, 2).Str() != "a" {
		t.Error("non-float columns should pass through")
	}
}

func TestToLabelsFromLabelsInverse(t *testing.T) {
	df := peopleDF(t)
	labeled, err := ToLabelsFrame(df, "name")
	if err != nil {
		t.Fatal(err)
	}
	if labeled.NCols() != 2 || labeled.RowLabels().Value(0).Str() != "ann" {
		t.Errorf("tolabels wrong:\n%s", labeled)
	}
	back, err := FromLabelsFrame(labeled, "name")
	if err != nil {
		t.Fatal(err)
	}
	// FROMLABELS inserts at position 0 and resets labels positionally.
	if back.ColName(0) != "name" || back.Value(0, 0).Str() != "ann" {
		t.Errorf("fromlabels wrong:\n%s", back)
	}
	if back.RowLabels().Value(2).Int() != 2 {
		t.Error("fromlabels should reset to positional labels")
	}
	if !back.Equal(df) {
		t.Errorf("TOLABELS∘FROMLABELS should recover the frame:\n%s\nvs\n%s", df, back)
	}
	if _, err := ToLabelsFrame(df, "ghost"); err == nil {
		t.Error("tolabels of unknown column should fail")
	}
}

func TestPivotFigure5(t *testing.T) {
	df := salesDF(t)
	// Pivot around Year: Year values become column labels (Wide Table of
	// MONTHs in Figure 5).
	wide, err := Pivot(df, "Year", "Month", "Sales")
	if err != nil {
		t.Fatal(err)
	}
	if wide.NRows() != 3 || wide.NCols() != 3 {
		t.Fatalf("pivot shape = %dx%d\n%s", wide.NRows(), wide.NCols(), wide)
	}
	if wide.ColName(0) != "2001" || wide.ColName(2) != "2003" {
		t.Errorf("pivot columns = %v", wide.ColNames())
	}
	if wide.RowLabels().Value(0).Str() != "Jan" || wide.RowLabels().Value(2).Str() != "Mar" {
		t.Errorf("pivot rows wrong:\n%s", wide)
	}
	check := map[[2]int]int64{
		{0, 0}: 100, {1, 0}: 110, {2, 0}: 120,
		{0, 1}: 150, {1, 1}: 200, {2, 1}: 250,
		{0, 2}: 300, {1, 2}: 310,
	}
	for pos, want := range check {
		if got := wide.Value(pos[0], pos[1]); got.Int() != want {
			t.Errorf("cell %v = %v, want %d", pos, got, want)
		}
	}
	// 2003 has no Mar: NULL, exactly as Figure 5 shows.
	if !wide.Value(2, 2).IsNull() {
		t.Errorf("missing cell should be null:\n%s", wide)
	}
}

func TestPivotTransposeIsOtherPivot(t *testing.T) {
	// Section 4.4: transposing the pivot over Year yields the pivot over
	// Month (Wide Table of YEARs).
	df := salesDF(t)
	overYear, err := Pivot(df, "Year", "Month", "Sales")
	if err != nil {
		t.Fatal(err)
	}
	transposed, err := TransposeFrame(overYear, nil)
	if err != nil {
		t.Fatal(err)
	}
	overMonth, err := Pivot(df, "Month", "Year", "Sales")
	if err != nil {
		t.Fatal(err)
	}
	if !transposed.Equal(overMonth) {
		t.Errorf("T(pivot Year) != pivot Month:\n%s\nvs\n%s", transposed, overMonth)
	}
}

func TestPivotPlanRendering(t *testing.T) {
	src := &Source{DF: salesDF(t), Name: "sales"}
	plan := PivotPlan(src, "Year", "Month", "Sales",
		[]types.Value{types.String("Jan"), types.String("Feb"), types.String("Mar")}, false)
	text := Render(plan)
	for _, op := range []string{"TRANSPOSE", "TOLABELS(Year)", "MAP(flatten)", "GROUPBY", "SOURCE(sales"} {
		if !strings.Contains(text, op) {
			t.Errorf("plan missing %s:\n%s", op, text)
		}
	}
	if CountNodes(plan) != 5 {
		t.Errorf("plan nodes = %d, want 5", CountNodes(plan))
	}
}

func TestGetDummies(t *testing.T) {
	df := core.MustFromRecords([]string{"color", "n"}, [][]any{
		{"red", 1}, {"blue", 2}, {"red", 3},
	})
	out, err := GetDummies(df)
	if err != nil {
		t.Fatal(err)
	}
	if out.ColIndex("color_red") < 0 || out.ColIndex("color_blue") < 0 {
		t.Fatalf("dummy columns missing: %v", out.ColNames())
	}
	if out.ColIndex("n") < 0 {
		t.Error("numeric column should pass through")
	}
	if !out.Value(0, out.ColIndex("color_red")).Bool() || out.Value(1, out.ColIndex("color_red")).Bool() {
		t.Errorf("one-hot values wrong:\n%s", out)
	}
	if !out.IsMatrix() {
		t.Log("note: get_dummies output with ints+bools is numeric-homogeneousness dependent")
	}
}

func TestAggAllUnionRewrite(t *testing.T) {
	df := peopleDF(t)
	out, err := AggAll(df, []expr.AggKind{expr.AggMean, expr.AggMax}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 2 {
		t.Fatalf("agg rows = %d\n%s", out.NRows(), out)
	}
	if out.RowLabels().Value(0).Str() != "mean" || out.RowLabels().Value(1).Str() != "max" {
		t.Error("agg row labels wrong")
	}
	if out.Value(0, 0).Float() != 100 {
		t.Errorf("mean salary = %v", out.Value(0, 0))
	}
	if out.Value(1, 0).Int() != 120 {
		t.Errorf("max salary = %v", out.Value(1, 0))
	}
}

func TestReindexLike(t *testing.T) {
	target := core.MustFromRecords([]string{"a", "b"}, [][]any{{1, 10}, {2, 20}, {3, 30}})
	reference := core.MustFromRecords([]string{"b", "a"}, [][]any{{0, 0}, {0, 0}})
	var err error
	reference, err = reference.WithRowLabels(vector.NewInt([]int64{2, 0}, nil))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReindexLike(target, reference)
	if err != nil {
		t.Fatal(err)
	}
	// Rows reordered to reference labels (2, 0); columns to (b, a).
	if out.ColName(0) != "b" || out.Value(0, 0).Int() != 30 || out.Value(1, 1).Int() != 1 {
		t.Errorf("reindex wrong:\n%s", out)
	}
}

func TestCovMatrix(t *testing.T) {
	df := core.MustFromRecords([]string{"x", "y", "tag"}, [][]any{
		{1.0, 2.0, "a"}, {2.0, 4.0, "b"}, {3.0, 6.0, "c"},
	})
	out, err := Cov(df)
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 2 || out.NCols() != 2 {
		t.Fatalf("cov shape = %dx%d", out.NRows(), out.NCols())
	}
	// var(x)=1, cov(x,y)=2, var(y)=4.
	if out.Value(0, 0).Float() != 1 || out.Value(0, 1).Float() != 2 || out.Value(1, 1).Float() != 4 {
		t.Errorf("cov values wrong:\n%s", out)
	}
	if _, err := Cov(core.MustFromRecords([]string{"s"}, [][]any{{"x"}})); err == nil {
		t.Error("cov of non-numeric frame should fail")
	}
}

func TestDistinctValues(t *testing.T) {
	df := salesDF(t)
	months, err := DistinctValues(df, "Month")
	if err != nil || len(months) != 3 {
		t.Fatalf("distinct months = %v, %v", months, err)
	}
	if months[0].Str() != "Jan" || months[2].Str() != "Mar" {
		t.Error("first-appearance order wrong")
	}
	if _, err := DistinctValues(df, "nope"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestInduceFrame(t *testing.T) {
	df, err := core.ReadCSVString("a,b\n1,x\n2,y\n", core.DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	typed := InduceFrame(df)
	if typed.DeclaredDomain(0) != types.Int || typed.DeclaredDomain(1) != types.Object {
		t.Error("InduceFrame should declare every domain")
	}
}

func TestPlanRenderAndWalk(t *testing.T) {
	df := peopleDF(t)
	plan := &Selection{
		Input: &Projection{Input: &Source{DF: df}, Cols: []string{"name", "salary"}},
		Pred:  expr.ColNotNull("salary"),
		Desc:  "salary not null",
	}
	text := Render(plan)
	if !strings.Contains(text, "SELECTION(salary not null)") || !strings.Contains(text, "PROJECTION(name, salary)") {
		t.Errorf("render wrong:\n%s", text)
	}
	if CountNodes(plan) != 3 {
		t.Error("walk count wrong")
	}
}

// Package algebra implements the dataframe algebra of Section 4.3 (Table 1):
// ordered analogs of the extended relational operators (SELECTION,
// PROJECTION, UNION, DIFFERENCE, CROSS-PRODUCT/JOIN, DROP-DUPLICATES,
// GROUPBY, SORT, RENAME), WINDOW, and the four dataframe-specific operators
// (TRANSPOSE, MAP, TOLABELS, FROMLABELS).
//
// The package provides both a logical plan representation (plan.go) and the
// single-node reference kernels that engines execute (kernels_*.go). The
// kernels define operator semantics; the eager baseline engine calls them
// directly, and the MODIN engine parallelizes them over partitions.
package algebra

import (
	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/vector"
)

// rowView adapts one dataframe row to expr.Row. A single view is reused
// across rows by bumping its position, so per-row UDF application does not
// allocate. Columns are parsed lazily, on first touch: a predicate that
// never reads a column never pays its schema induction (Section 5.1.1's
// deferral applies inside operators too).
type rowView struct {
	df    *core.DataFrame
	pos   int
	typed []vector.Vector // lazily resolved per column
	raw   bool            // read stored representation without induction
}

// newRowView returns a reusable, lazily-typing row view over df.
func newRowView(df *core.DataFrame) *rowView {
	return &rowView{df: df, typed: make([]vector.Vector, df.NCols())}
}

func (r *rowView) at(pos int) *rowView { r.pos = pos; return r }

func (r *rowView) column(j int) vector.Vector {
	v := r.typed[j]
	if v == nil {
		if r.raw {
			v = r.df.Col(j)
		} else {
			v = r.df.TypedCol(j)
		}
		r.typed[j] = v
	}
	return v
}

// NCols returns the arity.
func (r *rowView) NCols() int { return r.df.NCols() }

// Value returns the parsed cell at column j.
func (r *rowView) Value(j int) types.Value { return r.column(j).Value(r.pos) }

// ColName returns column j's label.
func (r *rowView) ColName(j int) string { return r.df.ColName(j) }

// ByName returns the cell under the named column, or null when absent.
func (r *rowView) ByName(name string) types.Value {
	j := r.df.ColIndex(name)
	if j < 0 {
		return types.Null()
	}
	return r.Value(j)
}

// Label returns the row's label.
func (r *rowView) Label() types.Value { return r.df.RowLabels().Value(r.pos) }

// Position returns the row's position.
func (r *rowView) Position() int { return r.pos }

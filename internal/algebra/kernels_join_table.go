package algebra

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/vector"
)

// JoinTable is a typed open-addressing hash table over a build frame's join
// keys: the probe kernel behind the key-shuffled hash join. Where JoinFrames
// chains boxed joinGroup slices in a Go map, JoinTable keeps four flat int32
// arrays (slot → entry, entry → anchor/first row, row → next row with the
// same key), so a per-bucket build allocates O(rows) once and probes touch
// cache-resident storage. Row chains preserve build-row order, so match
// emission order is identical to JoinFrames.
type JoinTable struct {
	right     *core.DataFrame
	keys      []vector.Vector
	mask      uint64
	slots     []int32 // open addressing: slot → entry index, -1 empty
	entryHash []uint64
	entryRow  []int32 // anchor row for collision verification
	firstRow  []int32 // entry → first build row with this key
	nextRow   []int32 // build row → next row with the same key, -1 ends
}

// BuildJoinTable indexes the build (right) side of a data join on the given
// key columns. Null-keyed build rows are skipped: they can never match.
func BuildJoinTable(right *core.DataFrame, on []string) (*JoinTable, error) {
	keys := make([]vector.Vector, len(on))
	for k, name := range on {
		j := right.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("algebra: join key %q missing from build input", name)
		}
		keys[k] = right.TypedCol(j)
	}
	n := right.NRows()
	size := 16
	for size < 2*n {
		size <<= 1
	}
	t := &JoinTable{
		right:   right,
		keys:    keys,
		mask:    uint64(size - 1),
		slots:   make([]int32, size),
		nextRow: make([]int32, n),
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
	hashes := rowHashes(keys, n)
	lastRow := make([]int32, 0, n/2)
	for i := 0; i < n; i++ {
		t.nextRow[i] = -1
		if anyNullAt(keys, i) {
			continue
		}
		h := hashes[i]
		s := h & t.mask
		for {
			e := t.slots[s]
			if e < 0 {
				t.slots[s] = int32(len(t.entryRow))
				t.entryHash = append(t.entryHash, h)
				t.entryRow = append(t.entryRow, int32(i))
				t.firstRow = append(t.firstRow, int32(i))
				lastRow = append(lastRow, int32(i))
				break
			}
			if t.entryHash[e] == h && rowsEqualAt(keys, i, keys, int(t.entryRow[e])) {
				t.nextRow[lastRow[e]] = int32(i)
				lastRow[e] = int32(i)
				break
			}
			s = (s + 1) & t.mask
		}
	}
	return t, nil
}

// Right returns the build frame the table indexes.
func (t *JoinTable) Right() *core.DataFrame { return t.right }

// Probe matches every row of left against the table and appends the
// (leftIdx, rightIdx) pairs in JoinFrames order: left rows in order, each
// followed by its matching build rows in build order; for left joins an
// unmatched probe row emits (i, -1). Only inner and left joins are
// supported — the key-shuffled strategy never lowers other kinds.
func (t *JoinTable) Probe(left *core.DataFrame, on []string, kind expr.JoinKind, leftIdx, rightIdx []int) ([]int, []int, error) {
	if kind != expr.JoinInner && kind != expr.JoinLeft {
		return nil, nil, fmt.Errorf("algebra: join table probe supports inner/left, got %s", kind)
	}
	keys := make([]vector.Vector, len(on))
	for k, name := range on {
		j := left.ColIndex(name)
		if j < 0 {
			return nil, nil, fmt.Errorf("algebra: join key %q missing from probe input", name)
		}
		keys[k] = left.TypedCol(j)
	}
	n := left.NRows()
	hashes := rowHashes(keys, n)
	for i := 0; i < n; i++ {
		matched := false
		if !anyNullAt(keys, i) {
			h := hashes[i]
			s := h & t.mask
			for {
				e := t.slots[s]
				if e < 0 {
					break
				}
				if t.entryHash[e] == h && rowsEqualAt(keys, i, t.keys, int(t.entryRow[e])) {
					for r := t.firstRow[e]; r >= 0; r = t.nextRow[r] {
						leftIdx = append(leftIdx, i)
						rightIdx = append(rightIdx, int(r))
					}
					matched = true
					break
				}
				s = (s + 1) & t.mask
			}
		}
		if !matched && kind == expr.JoinLeft {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, -1)
		}
	}
	return leftIdx, rightIdx, nil
}

// AssembleJoin exposes the join materialization step for physical
// strategies that compute match indices elsewhere: the key-shuffled join
// probes per bucket and assembles each bucket's slice with the same
// suffixing, key-coalescing and label rules as JoinFrames.
func AssembleJoin(left, right *core.DataFrame, on []string, onLabels bool, leftIdx, rightIdx []int) (*core.DataFrame, error) {
	return assembleJoin(left, right, on, onLabels, leftIdx, rightIdx)
}

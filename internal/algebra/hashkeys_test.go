package algebra

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// hashKeyFrame builds a frame whose key column has nulls, repeated values
// and a literal "NA" string (distinct from null), plus an int payload.
func hashKeyFrame(t *testing.T) *core.DataFrame {
	t.Helper()
	key := vector.NewObject(
		[]string{"a", "NA", "b", "a", "NA", "b", "a"},
		//        -    null  -    -   str.  -    -
		[]bool{false, true, false, false, false, false, false},
	)
	val := vector.NewInt([]int64{1, 2, 3, 4, 5, 6, 7}, nil)
	df, err := core.New([]string{"k", "v"}, []vector.Vector{key, val})
	if err != nil {
		t.Fatal(err)
	}
	return df
}

// TestGroupByNullKeyVsNAString asserts the hash-keyed grouping keeps a null
// key and the literal string "NA" in separate groups — the renderer-based
// representation conflated values whose printed forms agree.
func TestGroupByNullKeyVsNAString(t *testing.T) {
	df := hashKeyFrame(t)
	out, err := GroupByFrame(df, expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum, As: "s"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// First-appearance order: "a" (1+4+7), null (2), "b" (3+6), "NA" (5).
	if out.NRows() != 4 {
		t.Fatalf("want 4 groups (null and \"NA\" distinct), got %d", out.NRows())
	}
	wantKeys := []types.Value{types.String("a"), types.Null(), types.String("b"), types.String("NA")}
	wantSums := []float64{12, 2, 9, 5}
	for i := range wantSums {
		k, s := out.Value(i, 0), out.Value(i, 1)
		if !k.Equal(wantKeys[i]) {
			t.Errorf("group %d key = %#v, want %#v", i, k, wantKeys[i])
		}
		if s.Float() != wantSums[i] {
			t.Errorf("group %d sum = %v, want %v", i, s.Float(), wantSums[i])
		}
	}
}

// TestGroupByForcedHashCollisions narrows every row hash to 3 bits so
// distinct keys collide constantly; the exemplar verification must keep the
// result identical to the full-width run.
func TestGroupByForcedHashCollisions(t *testing.T) {
	spec := expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum, As: "s"}},
	}
	df := hashKeyFrame(t)
	want, err := GroupByFrame(df, spec)
	if err != nil {
		t.Fatal(err)
	}
	restore := SetRowHashMaskForTesting(0x7)
	defer restore()
	got, err := GroupByFrame(df, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("collided groupby differs:\ngot  %v rows\nwant %v rows", got.NRows(), want.NRows())
	}
	// Degenerate mask: every row hashes identically.
	restore2 := SetRowHashMaskForTesting(0)
	defer restore2()
	got0, err := GroupByFrame(df, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !got0.Equal(want) {
		t.Error("all-colliding groupby differs from full-width result")
	}
}

// TestGroupPartialMergeUnderCollisions exercises the cross-partial merge
// path with colliding hashes.
func TestGroupPartialMergeUnderCollisions(t *testing.T) {
	restore := SetRowHashMaskForTesting(0x3)
	defer restore()
	spec := expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum, As: "s"}},
	}
	df := hashKeyFrame(t)
	g1 := NewGroupPartial(spec)
	if err := g1.AddFrame(df.SliceRows(0, 4)); err != nil {
		t.Fatal(err)
	}
	g2 := NewGroupPartial(spec)
	if err := g2.AddFrame(df.SliceRows(4, df.NRows())); err != nil {
		t.Fatal(err)
	}
	g1.Merge(g2)
	merged, err := g1.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	whole, err := GroupByFrame(df, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Equal(whole) {
		t.Error("merged partials differ from single-pass groupby under collisions")
	}
}

// TestGroupByDictKeys groups on a dictionary-encoded (Category) column and
// checks order and aggregation, plus agreement with the same data as
// Object.
func TestGroupByDictKeys(t *testing.T) {
	codes := []string{"red", "blue", "red", "green", "blue", "red"}
	dict := vector.NewDictFromStrings(codes)
	obj := vector.NewObject(append([]string(nil), codes...), nil)
	val := vector.NewInt([]int64{1, 2, 3, 4, 5, 6}, nil)
	spec := expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum, As: "s"}},
	}
	dfDict := core.MustNew([]string{"k", "v"}, []vector.Vector{dict, val})
	dfObj := core.MustNew([]string{"k", "v"}, []vector.Vector{obj, val})
	a, err := GroupByFrame(dfDict, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GroupByFrame(dfObj, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.NRows() != 3 {
		t.Fatalf("want 3 groups, got %d", a.NRows())
	}
	if !a.Equal(b) {
		t.Error("Dict-keyed groupby differs from Object-keyed groupby on the same data")
	}
	// First appearance: red(1+3+6), blue(2+5), green(4).
	for i, want := range []float64{10, 7, 4} {
		if a.Value(i, 1).Float() != want {
			t.Errorf("group %d sum = %v, want %v", i, a.Value(i, 1).Float(), want)
		}
	}
}

// TestJoinAndDedupUnderCollisions runs JOIN, DROP-DUPLICATES and DIFFERENCE
// with forced collisions and checks against full-width results.
func TestJoinAndDedupUnderCollisions(t *testing.T) {
	left := hashKeyFrame(t)
	right := core.MustNew([]string{"k", "tag"}, []vector.Vector{
		vector.NewObject([]string{"a", "NA", "b"}, []bool{false, true, false}),
		vector.NewObject([]string{"A", "NULLTAG", "B"}, nil),
	})
	joined, err := JoinFrames(left, right, expr.JoinInner, []string{"k"}, false)
	if err != nil {
		t.Fatal(err)
	}
	dedup, err := DropDuplicatesFrame(left, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := DifferenceFrames(left, left.SliceRows(0, 2))
	if err != nil {
		t.Fatal(err)
	}

	restore := SetRowHashMaskForTesting(0x1)
	defer restore()
	joined2, err := JoinFrames(left, right, expr.JoinInner, []string{"k"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !joined2.Equal(joined) {
		t.Error("join differs under forced collisions")
	}
	// Null keys never match: the null-keyed right row contributes nothing.
	for i := 0; i < joined.NRows(); i++ {
		if joined.Value(i, joined.ColIndex("tag")).String() == "NULLTAG" {
			t.Error("null key must not join")
		}
	}
	dedup2, err := DropDuplicatesFrame(left, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if !dedup2.Equal(dedup) {
		t.Error("drop-duplicates differs under forced collisions")
	}
	if dedup.NRows() != 4 {
		t.Errorf("dedup should keep a, null, b, \"NA\": got %d rows", dedup.NRows())
	}
	diff2, err := DifferenceFrames(left, left.SliceRows(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !diff2.Equal(diff) {
		t.Error("difference differs under forced collisions")
	}
}

// TestSelectWhereMatchesSelectRows checks the kernel filter against the
// row-at-a-time path across representations and operators.
func TestSelectWhereMatchesSelectRows(t *testing.T) {
	df := core.MustNew([]string{"i", "f", "s", "c"}, []vector.Vector{
		vector.NewInt([]int64{3, 1, 4, 1, 5}, []bool{false, true, false, false, false}),
		vector.NewFloat([]float64{1.5, 2.5, 0, 3.5, 2.5}, []bool{false, false, true, false, false}),
		vector.NewObject([]string{"x", "y", "x", "z", "y"}, nil),
		vector.NewDictFromStrings([]string{"m", "n", "m", "m", "n"}),
	})
	cases := []*expr.Where{
		expr.WhereEquals("i", types.IntValue(1)),
		expr.WhereCompare("i", vector.CmpGe, types.IntValue(3)),
		expr.WhereCompare("f", vector.CmpLt, types.FloatValue(2.6)),
		expr.WhereEquals("s", types.String("y")),
		expr.WhereCompare("c", vector.CmpNe, types.CategoryValue("m")),
		expr.WhereNotNull("i"),
		expr.WhereIsNull("f"),
		expr.WhereNotNull("i").And("f", vector.CmpGt, types.FloatValue(1)).And("s", vector.CmpNe, types.String("z")),
		expr.WhereEquals("missing", types.IntValue(1)),
		expr.WhereIsNull("missing"),
		expr.WhereAnd(),
	}
	for _, w := range cases {
		got, err := SelectWhere(df, w)
		if err != nil {
			t.Fatal(err)
		}
		want := SelectRows(df, w.Predicate())
		if !got.Equal(want) {
			t.Errorf("SelectWhere(%s) = %d rows, SelectRows fallback = %d rows", w.Describe(), got.NRows(), want.NRows())
		}
	}
}

// TestSummarizeGroupKeysOrdinals checks the shuffle-routing summary:
// ordinals follow first appearance, hashes match the boxed tuples, and the
// "NA" string stays distinct from null.
func TestSummarizeGroupKeysOrdinals(t *testing.T) {
	df := hashKeyFrame(t)
	s, err := SummarizeGroupKeys(df, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	wantOrds := []int32{0, 1, 2, 0, 3, 2, 0} // a, null, b, a, "NA", b, a
	for i, w := range wantOrds {
		if s.Ordinals[i] != w {
			t.Fatalf("ordinals = %v, want %v", s.Ordinals, wantOrds)
		}
	}
	if len(s.Hashes) != 4 || len(s.Exemplars) != 4 {
		t.Fatalf("want 4 distinct keys, got %d", len(s.Hashes))
	}
	for d, ex := range s.Exemplars {
		if got := hashValues(ex); got != s.Hashes[d] {
			t.Errorf("distinct %d: exemplar hash %x != summary hash %x", d, got, s.Hashes[d])
		}
	}
	// Empty key list: the whole-frame group.
	s0, err := SummarizeGroupKeys(df, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s0.Hashes) != 1 {
		t.Fatalf("keyless summary should have one group, got %d", len(s0.Hashes))
	}
	for _, o := range s0.Ordinals {
		if o != 0 {
			t.Fatal("keyless summary ordinals must all be 0")
		}
	}
}

// TestKeylessCountSizeBulkPath checks the NullCount-driven fast path for
// whole-frame COUNT/SIZE aggregates against per-row accumulation.
func TestKeylessCountSizeBulkPath(t *testing.T) {
	df := core.MustNew([]string{"v"}, []vector.Vector{
		vector.NewInt([]int64{1, 0, 3, 0, 5}, []bool{false, true, false, true, false}),
	})
	out, err := GroupByFrame(df, expr.GroupBySpec{Aggs: []expr.AggSpec{
		{Col: "v", Agg: expr.AggCount, As: "count"},
		{Col: "v", Agg: expr.AggSize, As: "size"},
		{Col: "v", Agg: expr.AggSum, As: "sum"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 1 {
		t.Fatalf("want 1 row, got %d", out.NRows())
	}
	if got := out.Value(0, 0).Int(); got != 3 {
		t.Errorf("count = %d, want 3 (non-null)", got)
	}
	if got := out.Value(0, 1).Int(); got != 5 {
		t.Errorf("size = %d, want 5 (all rows)", got)
	}
	if got := out.Value(0, 2).Float(); got != 9 {
		t.Errorf("sum = %v, want 9", got)
	}
}

package algebra

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dferrors"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// SelectRows implements SELECTION: rows for which pred holds, in input
// order.
func SelectRows(df *core.DataFrame, pred expr.Predicate) *core.DataFrame {
	rv := newRowView(df)
	idx := make([]int, 0, df.NRows())
	for i := 0; i < df.NRows(); i++ {
		if pred(rv.at(i)) {
			idx = append(idx, i)
		}
	}
	return df.TakeRows(idx)
}

// SelectPositions implements positional SELECTION (dataframes support
// selection by row position, Section 5.2.1).
func SelectPositions(df *core.DataFrame, positions []int) (*core.DataFrame, error) {
	for _, p := range positions {
		if p < 0 || p >= df.NRows() {
			return nil, fmt.Errorf("algebra: row position %d out of range [0, %d)", p, df.NRows())
		}
	}
	return df.TakeRows(positions), nil
}

// Project implements PROJECTION: the named columns in the given order.
func Project(df *core.DataFrame, cols []string) (*core.DataFrame, error) {
	idx := make([]int, len(cols))
	for k, name := range cols {
		j := df.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("algebra: projection of %w %q", dferrors.ErrUnknownColumn, name)
		}
		idx[k] = j
	}
	return df.SelectCols(idx), nil
}

// ProjectPositions implements positional PROJECTION.
func ProjectPositions(df *core.DataFrame, positions []int) (*core.DataFrame, error) {
	for _, p := range positions {
		if p < 0 || p >= df.NCols() {
			return nil, fmt.Errorf("algebra: column position %d out of range [0, %d)", p, df.NCols())
		}
	}
	return df.SelectCols(positions), nil
}

// UnionFrames implements UNION: ordered concatenation, left rows first.
// Columns are aligned by label; the output schema is the left schema
// extended with right-only columns (an "outer" union), with missing cells
// null. When both schemas match positionally this is plain concatenation.
func UnionFrames(left, right *core.DataFrame) (*core.DataFrame, error) {
	names := left.ColNames()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range right.ColNames() {
		if !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	cols := make([]vector.Vector, len(names))
	labels := make([]types.Value, len(names))
	for k, name := range names {
		labels[k] = types.String(name)
		lj, rj := left.ColIndex(name), right.ColIndex(name)
		var lv, rv vector.Vector
		if lj >= 0 {
			lv = left.Col(lj)
		} else {
			lv = vector.Nulls(types.Object, left.NRows())
		}
		if rj >= 0 {
			rv = right.Col(rj)
		} else {
			rv = vector.Nulls(types.Object, right.NRows())
		}
		cols[k] = vector.Concat(lv, rv)
	}
	rowLab := vector.Concat(left.RowLabels(), right.RowLabels())
	return core.Build(cols, rowLab, labels, nil, left.Cache())
}

// VStackFrames concatenates frames that share a column structure,
// positionally: column j of the result is the concatenation of every input's
// column j, labels and declared domains taken from the first input (domains
// reset to unspecified where inputs disagree). It is the gather operation
// for row partitions; unlike UNION it never realigns columns by label, so
// duplicate or non-string labels pass through untouched.
func VStackFrames(frames ...*core.DataFrame) (*core.DataFrame, error) {
	if len(frames) == 0 {
		return core.Empty(), nil
	}
	first := frames[0]
	if len(frames) == 1 {
		return first, nil
	}
	n := first.NCols()
	for _, f := range frames[1:] {
		if f.NCols() != n {
			return nil, fmt.Errorf("algebra: vstack arity mismatch: %d vs %d", f.NCols(), n)
		}
	}
	cols := make([]vector.Vector, n)
	doms := make([]types.Domain, n)
	for j := 0; j < n; j++ {
		parts := make([]vector.Vector, len(frames))
		dom := first.DeclaredDomain(j)
		for k, f := range frames {
			parts[k] = f.Col(j)
			if f.DeclaredDomain(j) != dom {
				dom = types.Unspecified
			}
		}
		cols[j] = vector.Concat(parts...)
		if cols[j].Domain() != dom {
			dom = types.Unspecified
		}
		doms[j] = dom
	}
	labParts := make([]vector.Vector, len(frames))
	for k, f := range frames {
		labParts[k] = f.RowLabels()
	}
	return core.Build(cols, vector.Concat(labParts...), first.ColLabels(), doms, first.Cache())
}

// DifferenceFrames implements DIFFERENCE: left rows whose full tuple does
// not appear in right, in left order. Schemas must agree on labels. Tuple
// membership is hash-based: right rows bulk-hash into an anchor table and
// left probes verify with the typed equality kernels.
func DifferenceFrames(left, right *core.DataFrame) (*core.DataFrame, error) {
	if left.NCols() != right.NCols() {
		return nil, fmt.Errorf("algebra: difference arity mismatch: %d vs %d", left.NCols(), right.NCols())
	}
	// Align right columns to left's label order.
	aligned, err := Project(right, left.ColNames())
	if err != nil {
		return nil, fmt.Errorf("algebra: difference schema mismatch: %w", err)
	}
	rcols := make([]vector.Vector, aligned.NCols())
	for j := range rcols {
		rcols[j] = aligned.TypedCol(j)
	}
	rh := rowHashes(rcols, aligned.NRows())
	present := make(map[uint64][]int32, aligned.NRows())
	for i := 0; i < aligned.NRows(); i++ {
		h := rh[i]
		dup := false
		for _, a := range present[h] {
			if rowsEqualAt(rcols, i, rcols, int(a)) {
				dup = true
				break
			}
		}
		if !dup {
			present[h] = append(present[h], int32(i))
		}
	}
	lcols := make([]vector.Vector, left.NCols())
	for j := range lcols {
		lcols[j] = left.TypedCol(j)
	}
	lh := rowHashes(lcols, left.NRows())
	keep := make([]int, 0, left.NRows())
	for i := 0; i < left.NRows(); i++ {
		found := false
		for _, a := range present[lh[i]] {
			if rowsEqualAt(lcols, i, rcols, int(a)) {
				found = true
				break
			}
		}
		if !found {
			keep = append(keep, i)
		}
	}
	return left.TakeRows(keep), nil
}

// DropDuplicatesFrame implements DROP-DUPLICATES: first occurrence of each
// distinct tuple (over subset columns, or all columns when nil), in input
// order. Distinctness is hash-based with typed-kernel verification, like
// GROUPBY's key table.
func DropDuplicatesFrame(df *core.DataFrame, subset []string) (*core.DataFrame, error) {
	var cols []vector.Vector
	if len(subset) == 0 {
		cols = make([]vector.Vector, df.NCols())
		for j := range cols {
			cols[j] = df.TypedCol(j)
		}
	} else {
		cols = make([]vector.Vector, len(subset))
		for k, name := range subset {
			j := df.ColIndex(name)
			if j < 0 {
				return nil, fmt.Errorf("algebra: drop-duplicates on %w %q", dferrors.ErrUnknownColumn, name)
			}
			cols[k] = df.TypedCol(j)
		}
	}
	hashes := rowHashes(cols, df.NRows())
	seen := make(map[uint64][]int32, df.NRows())
	keep := make([]int, 0, df.NRows())
	for i := 0; i < df.NRows(); i++ {
		h := hashes[i]
		dup := false
		for _, a := range seen[h] {
			if rowsEqualAt(cols, i, cols, int(a)) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], int32(i))
		keep = append(keep, i)
	}
	return df.TakeRows(keep), nil
}

// RenameFrame implements RENAME: relabel columns per mapping.
func RenameFrame(df *core.DataFrame, mapping map[string]string) (*core.DataFrame, error) {
	labels := append([]types.Value(nil), df.ColLabels()...)
	found := 0
	for j := range labels {
		if to, ok := mapping[labels[j].String()]; ok {
			labels[j] = types.String(to)
			found++
		}
	}
	if found < len(mapping) {
		for from := range mapping {
			if df.ColIndex(from) < 0 {
				return nil, fmt.Errorf("algebra: rename of %w %q", dferrors.ErrUnknownColumn, from)
			}
		}
	}
	return df.WithColLabels(labels)
}

// SortFrame implements SORT: stable lexicographic order by the given keys.
// Stability preserves the prior order among ties, which the incremental
// inspection workflow relies on.
func SortFrame(df *core.DataFrame, order expr.SortOrder, byLabels bool) (*core.DataFrame, error) {
	n := df.NRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if byLabels {
		labels := df.RowLabels()
		sort.SliceStable(idx, func(a, b int) bool {
			return vector.CompareRows(labels, idx[a], labels, idx[b]) < 0
		})
		return df.TakeRows(idx), nil
	}
	keys := make([]vector.Vector, len(order))
	for k, o := range order {
		j := df.ColIndex(o.Col)
		if j < 0 {
			return nil, fmt.Errorf("algebra: sort on %w %q", dferrors.ErrUnknownColumn, o.Col)
		}
		keys[k] = df.TypedCol(j)
	}
	// The comparator runs on the typed key vectors through the comparison
	// kernels: no boxed Value per comparison.
	sort.SliceStable(idx, func(a, b int) bool {
		for k, o := range order {
			c := vector.CompareRows(keys[k], idx[a], keys[k], idx[b])
			if o.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return df.TakeRows(idx), nil
}

// LimitFrame retains the ordered prefix (n>0) or suffix (n<0).
func LimitFrame(df *core.DataFrame, n int) *core.DataFrame {
	switch {
	case n >= 0:
		if n > df.NRows() {
			n = df.NRows()
		}
		return df.SliceRows(0, n)
	default:
		k := -n
		if k > df.NRows() {
			k = df.NRows()
		}
		return df.SliceRows(df.NRows()-k, df.NRows())
	}
}

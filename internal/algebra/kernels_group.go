package algebra

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// Group identity is hash-based: every row's key columns are bulk-hashed to
// one 64-bit hash (vector.HashRows, no per-row rendering or boxing), the
// hash indexes a bucket table, and bucket probes verify true key equality
// against the group's boxed exemplar tuple — so two distinct keys that
// collide on the hash still land in distinct groups. The old representation
// rendered every row's key into a string ("a\x1f5\x1f"), which allocated
// per row and conflated values whose renderings agree (a null cell and the
// literal string "NA"); the hash path keeps them distinct because
// verification uses types.Value.Equal.

// rowHashSeed is the fixed seed of every row-key hash in the kernels. It
// must be one process-wide constant: shuffle summaries hash on partition
// tasks and compare on plan tasks.
const rowHashSeed uint64 = 0x7f4a7c159e3779b9

// rowHashMask narrows row hashes; all-ones in production. Tests shrink it
// to force collisions through the verification paths.
var rowHashMask = ^uint64(0)

// SetRowHashMaskForTesting narrows every row-key hash to the given mask so
// tests can force 64-bit hash collisions through the collision-verification
// paths (group tables, join probes, shuffle routing plans). It returns the
// restore function. Not for production use.
func SetRowHashMaskForTesting(mask uint64) (restore func()) {
	old := rowHashMask
	rowHashMask = mask
	return func() { rowHashMask = old }
}

// rowHashes bulk-hashes the rows of the key columns.
func rowHashes(cols []vector.Vector, n int) []uint64 {
	dst := make([]uint64, n)
	vector.HashRows(cols, rowHashSeed, dst)
	if rowHashMask != ^uint64(0) {
		for i := range dst {
			dst[i] &= rowHashMask
		}
	}
	return dst
}

// RowKeyHashes bulk-hashes df's rows over the named key columns under the
// process-wide row-hash seed (and test mask). Shuffle stages use it to route
// rows: two rows with equal key tuples hash identically on any partition, so
// hash-mod bucket assignment is consistent across bands and across the build
// and probe sides of a key-shuffled join.
func RowKeyHashes(df *core.DataFrame, cols []string) ([]uint64, error) {
	ks := make([]vector.Vector, len(cols))
	for k, name := range cols {
		j := df.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("algebra: key column %q missing", name)
		}
		ks[k] = df.TypedCol(j)
	}
	return rowHashes(ks, df.NRows()), nil
}

// hashValues hashes one boxed key tuple under the same seed and mask.
func hashValues(vals []types.Value) uint64 {
	return vector.HashRowValues(vals, rowHashSeed) & rowHashMask
}

// keysMatchRow verifies that row i of the key columns equals the boxed
// exemplar tuple (the collision check behind every bucket probe).
func keysMatchRow(exemplar []types.Value, cols []vector.Vector, i int) bool {
	for k, c := range cols {
		if !vector.EqualRowValue(c, i, exemplar[k]) {
			return false
		}
	}
	return true
}

// tuplesEqual compares two boxed key tuples of equal arity under
// vector.KeyEqual — the same equivalence the row-level hash probes verify
// with, so per-row and per-exemplar checks can never disagree.
func tuplesEqual(a, b []types.Value) bool {
	for k := range a {
		if !vector.KeyEqual(a[k], b[k]) {
			return false
		}
	}
	return true
}

// KeyTuplesEqual reports whether two boxed key tuples are the same group
// key under value equality. It is the one collision-verification
// equivalence shared by the group tables here and the shuffle routing plan
// that consumes SummarizeGroupKeys — keeping a single definition means
// routing and aggregation can never disagree on group identity.
func KeyTuplesEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	return tuplesEqual(a, b)
}

// groupEntry is the running state for one group.
type groupEntry struct {
	hash      uint64
	keyVals   []types.Value // exemplar key tuple (verification + finalize)
	accs      []*expr.Accumulator
	collected []*core.DataFrame // sub-frames contributed per partition (collect aggs)
}

// GroupPartial is a mergeable partial GROUPBY aggregation. The MODIN engine
// computes one per partition and merges them; the baseline engine uses a
// single partial over the whole frame. Groups are emitted in first-
// appearance order, preserving the ordered-dataframe semantics.
type GroupPartial struct {
	spec    expr.GroupBySpec
	entries []*groupEntry      // first-appearance order
	buckets map[uint64][]int32 // row hash → entry indices
	hasColl bool
}

// NewGroupPartial returns an empty partial aggregation for the spec.
func NewGroupPartial(spec expr.GroupBySpec) *GroupPartial {
	g := &GroupPartial{spec: spec, buckets: make(map[uint64][]int32)}
	for _, a := range spec.Aggs {
		if a.Agg == expr.AggCollect {
			g.hasColl = true
		}
	}
	return g
}

// lookup returns the entry index for row i (hash h), creating the group on
// first appearance.
func (g *GroupPartial) lookup(h uint64, keyCols []vector.Vector, i int) int32 {
	for _, ei := range g.buckets[h] {
		if keysMatchRow(g.entries[ei].keyVals, keyCols, i) {
			return ei
		}
	}
	e := &groupEntry{
		hash:    h,
		keyVals: make([]types.Value, len(keyCols)),
		accs:    make([]*expr.Accumulator, len(g.spec.Aggs)),
	}
	for k, c := range keyCols {
		e.keyVals[k] = c.Value(i)
	}
	for k, a := range g.spec.Aggs {
		e.accs[k] = expr.NewAccumulator(a.Agg)
	}
	ei := int32(len(g.entries))
	g.entries = append(g.entries, e)
	g.buckets[h] = append(g.buckets[h], ei)
	return ei
}

// keyAggCols resolves the typed key and aggregate columns of df.
func (g *GroupPartial) keyAggCols(df *core.DataFrame) (keyCols, aggCols []vector.Vector, err error) {
	keyCols = make([]vector.Vector, len(g.spec.Keys))
	for k, name := range g.spec.Keys {
		j := df.ColIndex(name)
		if j < 0 {
			return nil, nil, fmt.Errorf("algebra: groupby key %q not found", name)
		}
		keyCols[k] = df.TypedCol(j)
	}
	aggCols = make([]vector.Vector, len(g.spec.Aggs))
	for k, a := range g.spec.Aggs {
		if a.Col == "" {
			continue
		}
		j := df.ColIndex(a.Col)
		if j < 0 {
			return nil, nil, fmt.Errorf("algebra: groupby aggregate column %q not found", a.Col)
		}
		aggCols[k] = df.TypedCol(j)
	}
	return keyCols, aggCols, nil
}

// AddFrame folds every row of df into the partial aggregation.
func (g *GroupPartial) AddFrame(df *core.DataFrame) error {
	keyCols, aggCols, err := g.keyAggCols(df)
	if err != nil {
		return err
	}
	n := df.NRows()
	if n == 0 {
		return nil
	}

	// With no grouping keys there is exactly one group, and COUNT/SIZE
	// aggregates read straight off the column length and null count — no
	// per-row accumulation (and no row hashing) at all.
	bulk := g.bulkAggs()
	allBulk := bulk != nil && !g.hasColl
	if bulk != nil {
		for k := range g.spec.Aggs {
			if !bulk[k] {
				allBulk = false
			}
		}
	}

	if !allBulk {
		hashes := rowHashes(keyCols, n)
		// Row positions per group, gathered only when a collect agg needs
		// them.
		var rowsByEntry map[int32][]int
		if g.hasColl {
			rowsByEntry = make(map[int32][]int)
		}
		for i := 0; i < n; i++ {
			ei := g.lookup(hashes[i], keyCols, i)
			e := g.entries[ei]
			for k, a := range g.spec.Aggs {
				if a.Agg == expr.AggCollect || (bulk != nil && bulk[k]) {
					continue
				}
				if aggCols[k] != nil {
					e.accs[k].Add(aggCols[k].Value(i))
				} else {
					// Whole-row aggregates (size) count the row itself.
					e.accs[k].Add(types.IntValue(int64(i)))
				}
			}
			if g.hasColl {
				rowsByEntry[ei] = append(rowsByEntry[ei], i)
			}
		}
		if g.hasColl {
			nonKey := g.nonKeyColumns(df)
			for ei := range g.entries {
				rows, ok := rowsByEntry[int32(ei)]
				if !ok {
					continue
				}
				sub := df.TakeRows(rows)
				if len(nonKey) > 0 {
					sub = sub.SelectCols(nonKey)
				}
				g.entries[ei].collected = append(g.entries[ei].collected, sub)
			}
		}
	} else {
		// Ensure the single group exists even though no row loop runs;
		// hashValues(nil) is the same whole-frame hash rowHashes produces
		// for an empty key list.
		g.lookup(hashValues(nil), keyCols, 0)
	}

	if bulk != nil {
		e := g.entries[len(g.entries)-1]
		if len(g.entries) != 1 {
			return fmt.Errorf("algebra: keyless groupby produced %d groups", len(g.entries))
		}
		for k := range g.spec.Aggs {
			if !bulk[k] {
				continue
			}
			nonNull := int64(n)
			if aggCols[k] != nil {
				nonNull -= int64(vector.NullCount(aggCols[k]))
			}
			e.accs[k].AddCounts(int64(n), nonNull)
		}
	}
	return nil
}

// bulkAggs returns the per-aggregate bulk-eligibility flags for a keyless
// frame fold, or nil when the bulk path does not apply.
func (g *GroupPartial) bulkAggs() []bool {
	if len(g.spec.Keys) != 0 {
		return nil
	}
	bulk := make([]bool, len(g.spec.Aggs))
	any := false
	for k, a := range g.spec.Aggs {
		if a.Agg == expr.AggCount || a.Agg == expr.AggSize {
			bulk[k] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return bulk
}

func (g *GroupPartial) nonKeyColumns(df *core.DataFrame) []int {
	keySet := make(map[string]bool, len(g.spec.Keys))
	for _, k := range g.spec.Keys {
		keySet[k] = true
	}
	var idx []int
	for j := 0; j < df.NCols(); j++ {
		if !keySet[df.ColName(j)] {
			idx = append(idx, j)
		}
	}
	return idx
}

// Merge folds another partial (same spec) into g, preserving g's group
// order first, then appending groups first seen in other.
func (g *GroupPartial) Merge(other *GroupPartial) {
	for _, oe := range other.entries {
		found := int32(-1)
		for _, ei := range g.buckets[oe.hash] {
			if tuplesEqual(g.entries[ei].keyVals, oe.keyVals) {
				found = ei
				break
			}
		}
		if found < 0 {
			ei := int32(len(g.entries))
			g.entries = append(g.entries, oe)
			g.buckets[oe.hash] = append(g.buckets[oe.hash], ei)
			continue
		}
		e := g.entries[found]
		for k := range e.accs {
			e.accs[k].Merge(oe.accs[k])
		}
		e.collected = append(e.collected, oe.collected...)
	}
}

// NumGroups returns the number of distinct groups seen so far.
func (g *GroupPartial) NumGroups() int { return len(g.entries) }

// Finalize materializes the grouped result: key columns (or key row labels
// when AsLabels), then one column per aggregate. Collect aggregates yield
// Composite cells holding each group's sub-dataframe.
func (g *GroupPartial) Finalize() (*core.DataFrame, error) {
	n := len(g.entries)
	keyVals := make([][]types.Value, len(g.spec.Keys))
	for k := range keyVals {
		keyVals[k] = make([]types.Value, 0, n)
	}
	aggVals := make([][]types.Value, len(g.spec.Aggs))
	for k := range aggVals {
		aggVals[k] = make([]types.Value, 0, n)
	}

	for _, e := range g.entries {
		for k := range g.spec.Keys {
			keyVals[k] = append(keyVals[k], e.keyVals[k])
		}
		for k, a := range g.spec.Aggs {
			if a.Agg == expr.AggCollect {
				sub, err := unionAll(e.collected)
				if err != nil {
					return nil, err
				}
				aggVals[k] = append(aggVals[k], types.CompositeValue(sub))
				continue
			}
			aggVals[k] = append(aggVals[k], e.accs[k].Result())
		}
	}

	var cols []vector.Vector
	var labels []types.Value
	if !g.spec.AsLabels {
		for k, name := range g.spec.Keys {
			cols = append(cols, buildColumn(keyVals[k]))
			labels = append(labels, types.String(name))
		}
	}
	for k, a := range g.spec.Aggs {
		if a.Agg == expr.AggCollect {
			cols = append(cols, vector.NewAny(aggVals[k]))
		} else {
			cols = append(cols, buildColumn(aggVals[k]))
		}
		labels = append(labels, types.String(a.OutName()))
	}

	var rowLab vector.Vector
	if g.spec.AsLabels {
		// Implicit TOLABELS: key values become the row labels
		// (composite for multiple keys).
		labs := make([]types.Value, n)
		for i := range labs {
			parts := make([]types.Value, len(g.spec.Keys))
			for k := range g.spec.Keys {
				parts[k] = keyVals[k][i]
			}
			labs[i] = core.CompositeLabel(parts...)
		}
		rowLab = buildColumn(labs)
	}
	return core.Build(cols, rowLab, labels, nil, nil)
}

// GroupByFrame implements GROUPBY over a single frame. When spec.Sorted is
// set the input is assumed ordered by the keys and a streaming pass is used
// instead of hashing — the rewrite opportunity of Figure 8(b).
func GroupByFrame(df *core.DataFrame, spec expr.GroupBySpec) (*core.DataFrame, error) {
	if spec.Sorted {
		return groupBySorted(df, spec)
	}
	if out, ok, err := DictGroupFrames([]*core.DataFrame{df}, spec); ok || err != nil {
		return out, err
	}
	g := NewGroupPartial(spec)
	if err := g.AddFrame(df); err != nil {
		return nil, err
	}
	return g.Finalize()
}

// groupBySorted performs a streaming group-by over key-sorted input: runs
// of equal keys become groups in one pass, with one hashed entry lookup per
// run instead of per row — the advantage the Figure 8(b) pivot rewrite
// exploits. Non-adjacent duplicate keys (input not actually sorted) still
// merge correctly because run boundaries fall back to the hashed entry
// table.
func groupBySorted(df *core.DataFrame, spec expr.GroupBySpec) (*core.DataFrame, error) {
	inner := spec
	inner.Sorted = false
	g := NewGroupPartial(inner)
	keyCols, aggCols, err := g.keyAggCols(df)
	if err != nil {
		return nil, err
	}
	n := df.NRows()
	if n == 0 {
		return g.Finalize()
	}
	hashes := rowHashes(keyCols, n)

	sameKey := func(a, b int) bool {
		for _, c := range keyCols {
			if !vector.EqualRows(c, a, c, b) {
				return false
			}
		}
		return true
	}

	var cur *groupEntry
	for i := 0; i < n; i++ {
		if cur == nil || !sameKey(i-1, i) {
			// Run boundary: locate (or create) the group entry. The
			// hashed lookup happens once per run, not once per row.
			cur = g.entries[g.lookup(hashes[i], keyCols, i)]
		}
		for k, a := range spec.Aggs {
			if a.Agg == expr.AggCollect {
				continue
			}
			if aggCols[k] != nil {
				cur.accs[k].Add(aggCols[k].Value(i))
			} else {
				cur.accs[k].Add(types.IntValue(int64(i)))
			}
		}
	}

	if g.hasColl {
		collectRuns(df, g, keyCols, hashes, sameKey)
	}
	return g.Finalize()
}

// collectRuns attaches each run's sub-frame for collect aggregates during a
// streaming group-by.
func collectRuns(df *core.DataFrame, g *GroupPartial, keyCols []vector.Vector, hashes []uint64, sameKey func(a, b int) bool) {
	nonKey := g.nonKeyColumns(df)
	start := 0
	for i := 1; i <= df.NRows(); i++ {
		if i < df.NRows() && sameKey(i-1, i) {
			continue
		}
		e := g.entries[g.lookup(hashes[start], keyCols, start)]
		sub := df.SliceRows(start, i)
		if len(nonKey) > 0 {
			sub = sub.SelectCols(nonKey)
		}
		e.collected = append(e.collected, sub)
		start = i
	}
}

// unionAll concatenates frames in order (used to merge collected groups
// across partitions).
func unionAll(frames []*core.DataFrame) (*core.DataFrame, error) {
	if len(frames) == 0 {
		return core.Empty(), nil
	}
	out := frames[0]
	var err error
	for _, f := range frames[1:] {
		out, err = VStackFrames(out, f)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildColumn picks the narrowest domain covering the values and builds a
// typed vector; mixed domains fall back to Object.
func buildColumn(vals []types.Value) vector.Vector {
	dom := types.Unspecified
	mixed := false
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		d := v.Domain()
		switch {
		case dom == types.Unspecified:
			dom = d
		case dom == d:
		case dom == types.Int && d == types.Float, dom == types.Float && d == types.Int:
			dom = types.Float
		default:
			mixed = true
		}
	}
	if dom == types.Composite {
		return vector.NewAny(vals)
	}
	if mixed || dom == types.Unspecified {
		dom = types.Object
	}
	return vector.FromValues(dom, vals)
}

// GroupKeySummary is the routing form of a frame's group keys, shipped from
// shuffle summarize tasks to the plan task: one small ordinal per row
// (which of the frame's distinct keys the row carries, in first-appearance
// order) plus, per distinct key, its 64-bit hash and a boxed exemplar tuple
// for collision verification. Nothing is rendered to strings.
type GroupKeySummary struct {
	// Ordinals holds, per row, the index of the row's key in Distinct.
	Ordinals []int32
	// Hashes holds the row hash of each distinct key.
	Hashes []uint64
	// Exemplars holds one boxed key tuple per distinct key.
	Exemplars [][]types.Value
}

// SummarizeGroupKeys computes the GroupKeySummary of df over the named key
// columns. Empty keys yield the whole-frame group: every row gets ordinal
// 0. The hashing and verification match GroupPartial exactly, so routing
// and aggregation always agree on group identity.
func SummarizeGroupKeys(df *core.DataFrame, keys []string) (*GroupKeySummary, error) {
	cols := make([]vector.Vector, len(keys))
	for k, name := range keys {
		j := df.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("algebra: groupby key %q not found", name)
		}
		cols[k] = df.TypedCol(j)
	}
	n := df.NRows()
	s := &GroupKeySummary{Ordinals: make([]int32, n)}
	hashes := rowHashes(cols, n)
	buckets := make(map[uint64][]int32)
	for i := 0; i < n; i++ {
		h := hashes[i]
		ord := int32(-1)
		for _, d := range buckets[h] {
			if keysMatchRow(s.Exemplars[d], cols, i) {
				ord = d
				break
			}
		}
		if ord < 0 {
			ord = int32(len(s.Hashes))
			exemplar := make([]types.Value, len(cols))
			for k, c := range cols {
				exemplar[k] = c.Value(i)
			}
			s.Hashes = append(s.Hashes, h)
			s.Exemplars = append(s.Exemplars, exemplar)
			buckets[h] = append(buckets[h], ord)
		}
		s.Ordinals[i] = ord
	}
	return s, nil
}

// GroupKeyFold is the prefix-foldable global form of band key summaries:
// feed it each band's distinct-key stats IN BAND ORDER and it assigns every
// key a global id equal to its first-appearance rank under the single-node
// scan order — the invariant that lets a hash-routed shuffle repair global
// group order after the fact. The state after k bands depends only on bands
// [0, k), so the fold can run incrementally as summaries land rather than
// barriering on all of them; hash collisions between distinct keys are
// broken by exemplar verification under KeyTuplesEqual, the same
// equivalence the per-row summaries use.
type GroupKeyFold struct {
	// Exemplars, Hashes and Counts are indexed by global id (= global
	// first-appearance rank); Counts accumulates each key's total row
	// volume and Total the fold's overall row count.
	Exemplars [][]types.Value
	Hashes    []uint64
	Counts    []int64
	Total     int64

	index map[uint64][]int32 // hash → global ids
}

// NewGroupKeyFold returns an empty fold.
func NewGroupKeyFold() *GroupKeyFold {
	return &GroupKeyFold{index: make(map[uint64][]int32)}
}

// AddBand folds one band's distinct-key stats (hash, exemplar and row count
// per key, in the band's first-appearance order). Bands must arrive in band
// order for global ids to equal global first-appearance ranks.
func (f *GroupKeyFold) AddBand(hashes []uint64, exemplars [][]types.Value, counts []int64) {
	for d, h := range hashes {
		gid := int32(-1)
		for _, cand := range f.index[h] {
			if KeyTuplesEqual(f.Exemplars[cand], exemplars[d]) {
				gid = cand
				break
			}
		}
		if gid < 0 {
			gid = int32(len(f.Exemplars))
			f.Exemplars = append(f.Exemplars, exemplars[d])
			f.Hashes = append(f.Hashes, h)
			f.Counts = append(f.Counts, 0)
			f.index[h] = append(f.index[h], gid)
		}
		f.Counts[gid] += counts[d]
		f.Total += counts[d]
	}
}

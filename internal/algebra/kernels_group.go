package algebra

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// groupEntry is the running state for one group.
type groupEntry struct {
	keyVals   []types.Value
	accs      []*expr.Accumulator
	collected []*core.DataFrame // sub-frames contributed per partition (collect aggs)
}

// GroupPartial is a mergeable partial GROUPBY aggregation. The MODIN engine
// computes one per partition and merges them; the baseline engine uses a
// single partial over the whole frame. Groups are emitted in first-
// appearance order, preserving the ordered-dataframe semantics.
type GroupPartial struct {
	spec    expr.GroupBySpec
	order   []string
	groups  map[string]*groupEntry
	hasColl bool
}

// NewGroupPartial returns an empty partial aggregation for the spec.
func NewGroupPartial(spec expr.GroupBySpec) *GroupPartial {
	g := &GroupPartial{spec: spec, groups: make(map[string]*groupEntry)}
	for _, a := range spec.Aggs {
		if a.Agg == expr.AggCollect {
			g.hasColl = true
		}
	}
	return g
}

// AddFrame folds every row of df into the partial aggregation.
func (g *GroupPartial) AddFrame(df *core.DataFrame) error {
	keyCols := make([]vector.Vector, len(g.spec.Keys))
	keyIdx := allColIdx(len(g.spec.Keys))
	for k, name := range g.spec.Keys {
		j := df.ColIndex(name)
		if j < 0 {
			return fmt.Errorf("algebra: groupby key %q not found", name)
		}
		keyCols[k] = df.TypedCol(j)
	}
	aggCols := make([]vector.Vector, len(g.spec.Aggs))
	for k, a := range g.spec.Aggs {
		if a.Col == "" {
			continue
		}
		j := df.ColIndex(a.Col)
		if j < 0 {
			return fmt.Errorf("algebra: groupby aggregate column %q not found", a.Col)
		}
		aggCols[k] = df.TypedCol(j)
	}

	// Row positions per group, gathered only when a collect agg needs
	// them.
	var collectRows map[string][]int
	if g.hasColl {
		collectRows = make(map[string][]int)
	}

	var b strings.Builder
	for i := 0; i < df.NRows(); i++ {
		key := rowKey(keyCols, keyIdx, i, &b)
		e, ok := g.groups[key]
		if !ok {
			e = &groupEntry{
				keyVals: make([]types.Value, len(keyCols)),
				accs:    make([]*expr.Accumulator, len(g.spec.Aggs)),
			}
			for k, c := range keyCols {
				e.keyVals[k] = c.Value(i)
			}
			for k, a := range g.spec.Aggs {
				e.accs[k] = expr.NewAccumulator(a.Agg)
			}
			g.groups[key] = e
			g.order = append(g.order, key)
		}
		for k, a := range g.spec.Aggs {
			if a.Agg == expr.AggCollect {
				continue
			}
			if aggCols[k] != nil {
				e.accs[k].Add(aggCols[k].Value(i))
			} else {
				// Whole-row aggregates (size) count the row itself.
				e.accs[k].Add(types.IntValue(int64(i)))
			}
		}
		if g.hasColl {
			collectRows[key] = append(collectRows[key], i)
		}
	}

	if g.hasColl {
		nonKey := g.nonKeyColumns(df)
		for key, rows := range collectRows {
			sub := df.TakeRows(rows)
			if len(nonKey) > 0 {
				sub = sub.SelectCols(nonKey)
			}
			g.groups[key].collected = append(g.groups[key].collected, sub)
		}
	}
	return nil
}

func (g *GroupPartial) nonKeyColumns(df *core.DataFrame) []int {
	keySet := make(map[string]bool, len(g.spec.Keys))
	for _, k := range g.spec.Keys {
		keySet[k] = true
	}
	var idx []int
	for j := 0; j < df.NCols(); j++ {
		if !keySet[df.ColName(j)] {
			idx = append(idx, j)
		}
	}
	return idx
}

// Merge folds another partial (same spec) into g, preserving g's group
// order first, then appending groups first seen in other.
func (g *GroupPartial) Merge(other *GroupPartial) {
	for _, key := range other.order {
		oe := other.groups[key]
		e, ok := g.groups[key]
		if !ok {
			g.groups[key] = oe
			g.order = append(g.order, key)
			continue
		}
		for k := range e.accs {
			e.accs[k].Merge(oe.accs[k])
		}
		e.collected = append(e.collected, oe.collected...)
	}
}

// NumGroups returns the number of distinct groups seen so far.
func (g *GroupPartial) NumGroups() int { return len(g.order) }

// Finalize materializes the grouped result: key columns (or key row labels
// when AsLabels), then one column per aggregate. Collect aggregates yield
// Composite cells holding each group's sub-dataframe.
func (g *GroupPartial) Finalize() (*core.DataFrame, error) {
	n := len(g.order)
	keyVals := make([][]types.Value, len(g.spec.Keys))
	for k := range keyVals {
		keyVals[k] = make([]types.Value, 0, n)
	}
	aggVals := make([][]types.Value, len(g.spec.Aggs))
	for k := range aggVals {
		aggVals[k] = make([]types.Value, 0, n)
	}

	for _, key := range g.order {
		e := g.groups[key]
		for k := range g.spec.Keys {
			keyVals[k] = append(keyVals[k], e.keyVals[k])
		}
		for k, a := range g.spec.Aggs {
			if a.Agg == expr.AggCollect {
				sub, err := unionAll(e.collected)
				if err != nil {
					return nil, err
				}
				aggVals[k] = append(aggVals[k], types.CompositeValue(sub))
				continue
			}
			aggVals[k] = append(aggVals[k], e.accs[k].Result())
		}
	}

	var cols []vector.Vector
	var labels []types.Value
	if !g.spec.AsLabels {
		for k, name := range g.spec.Keys {
			cols = append(cols, buildColumn(keyVals[k]))
			labels = append(labels, types.String(name))
		}
	}
	for k, a := range g.spec.Aggs {
		if a.Agg == expr.AggCollect {
			cols = append(cols, vector.NewAny(aggVals[k]))
		} else {
			cols = append(cols, buildColumn(aggVals[k]))
		}
		labels = append(labels, types.String(a.OutName()))
	}

	var rowLab vector.Vector
	if g.spec.AsLabels {
		// Implicit TOLABELS: key values become the row labels
		// (composite for multiple keys).
		labs := make([]types.Value, n)
		for i := range labs {
			parts := make([]types.Value, len(g.spec.Keys))
			for k := range g.spec.Keys {
				parts[k] = keyVals[k][i]
			}
			labs[i] = core.CompositeLabel(parts...)
		}
		rowLab = buildColumn(labs)
	}
	return core.Build(cols, rowLab, labels, nil, nil)
}

// GroupByFrame implements GROUPBY over a single frame. When spec.Sorted is
// set the input is assumed ordered by the keys and a streaming pass is used
// instead of hashing — the rewrite opportunity of Figure 8(b).
func GroupByFrame(df *core.DataFrame, spec expr.GroupBySpec) (*core.DataFrame, error) {
	if spec.Sorted {
		return groupBySorted(df, spec)
	}
	g := NewGroupPartial(spec)
	if err := g.AddFrame(df); err != nil {
		return nil, err
	}
	return g.Finalize()
}

// groupBySorted performs a streaming group-by over key-sorted input: runs
// of equal keys become groups in one pass, with no hash table and no
// per-row key rendering — the advantage the Figure 8(b) pivot rewrite
// exploits. Non-adjacent duplicate keys (input not actually sorted) still
// merge correctly because run boundaries fall back to the hashed entry map.
func groupBySorted(df *core.DataFrame, spec expr.GroupBySpec) (*core.DataFrame, error) {
	keyCols := make([]vector.Vector, len(spec.Keys))
	for k, name := range spec.Keys {
		j := df.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("algebra: groupby key %q not found", name)
		}
		keyCols[k] = df.TypedCol(j)
	}
	aggCols := make([]vector.Vector, len(spec.Aggs))
	for k, a := range spec.Aggs {
		if a.Col == "" {
			continue
		}
		j := df.ColIndex(a.Col)
		if j < 0 {
			return nil, fmt.Errorf("algebra: groupby aggregate column %q not found", a.Col)
		}
		aggCols[k] = df.TypedCol(j)
	}

	inner := spec
	inner.Sorted = false
	g := NewGroupPartial(inner)

	sameKey := func(a, b int) bool {
		for _, c := range keyCols {
			if !c.Value(a).Equal(c.Value(b)) {
				return false
			}
		}
		return true
	}

	var b strings.Builder
	keyIdx := allColIdx(len(keyCols))
	var cur *groupEntry
	for i := 0; i < df.NRows(); i++ {
		if cur == nil || !sameKey(i-1, i) {
			// Run boundary: locate (or create) the group entry. The
			// hashed lookup happens once per run, not once per row.
			key := rowKey(keyCols, keyIdx, i, &b)
			e, ok := g.groups[key]
			if !ok {
				e = &groupEntry{
					keyVals: make([]types.Value, len(keyCols)),
					accs:    make([]*expr.Accumulator, len(spec.Aggs)),
				}
				for k, c := range keyCols {
					e.keyVals[k] = c.Value(i)
				}
				for k, a := range spec.Aggs {
					e.accs[k] = expr.NewAccumulator(a.Agg)
				}
				g.groups[key] = e
				g.order = append(g.order, key)
			}
			cur = e
		}
		for k, a := range spec.Aggs {
			if a.Agg == expr.AggCollect {
				continue
			}
			if aggCols[k] != nil {
				cur.accs[k].Add(aggCols[k].Value(i))
			} else {
				cur.accs[k].Add(types.IntValue(int64(i)))
			}
		}
	}

	if g.hasColl {
		if err := collectRuns(df, g, keyCols, sameKey); err != nil {
			return nil, err
		}
	}
	return g.Finalize()
}

// collectRuns attaches each run's sub-frame for collect aggregates during a
// streaming group-by.
func collectRuns(df *core.DataFrame, g *GroupPartial, keyCols []vector.Vector, sameKey func(a, b int) bool) error {
	var b strings.Builder
	keyIdx := allColIdx(len(keyCols))
	nonKey := g.nonKeyColumns(df)
	start := 0
	for i := 1; i <= df.NRows(); i++ {
		if i < df.NRows() && sameKey(i-1, i) {
			continue
		}
		key := rowKey(keyCols, keyIdx, start, &b)
		sub := df.SliceRows(start, i)
		if len(nonKey) > 0 {
			sub = sub.SelectCols(nonKey)
		}
		g.groups[key].collected = append(g.groups[key].collected, sub)
		start = i
	}
	return nil
}

// unionAll concatenates frames in order (used to merge collected groups
// across partitions).
func unionAll(frames []*core.DataFrame) (*core.DataFrame, error) {
	if len(frames) == 0 {
		return core.Empty(), nil
	}
	out := frames[0]
	var err error
	for _, f := range frames[1:] {
		out, err = VStackFrames(out, f)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildColumn picks the narrowest domain covering the values and builds a
// typed vector; mixed domains fall back to Object.
func buildColumn(vals []types.Value) vector.Vector {
	dom := types.Unspecified
	mixed := false
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		d := v.Domain()
		switch {
		case dom == types.Unspecified:
			dom = d
		case dom == d:
		case dom == types.Int && d == types.Float, dom == types.Float && d == types.Int:
			dom = types.Float
		default:
			mixed = true
		}
	}
	if dom == types.Composite {
		return vector.NewAny(vals)
	}
	if mixed || dom == types.Unspecified {
		dom = types.Object
	}
	return vector.FromValues(dom, vals)
}

package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Value is a single dataframe cell: a member of one of the domains in Dom,
// or that domain's distinguished null. The zero Value is the Object-domain
// null.
type Value struct {
	dom  Domain
	null bool
	i    int64
	f    float64
	b    bool
	s    string
	// compPayload carries the opaque payload of Composite values; see
	// composite.go.
	compPayload any
}

// NullValue returns the distinguished null of domain d.
func NullValue(d Domain) Value { return Value{dom: d, null: true} }

// Null returns the Object-domain null (the zero Value made explicit).
func Null() Value { return Value{dom: Object, null: true} }

// String returns an Object-domain value holding s.
func String(s string) Value { return Value{dom: Object, s: s} }

// CategoryValue returns a Category-domain value holding s.
func CategoryValue(s string) Value { return Value{dom: Category, s: s} }

// IntValue returns an Int-domain value holding i.
func IntValue(i int64) Value { return Value{dom: Int, i: i} }

// FloatValue returns a Float-domain value holding f. NaN is mapped to the
// Float null, matching the convention in pandas.
func FloatValue(f float64) Value {
	if math.IsNaN(f) {
		return NullValue(Float)
	}
	return Value{dom: Float, f: f}
}

// BoolValue returns a Bool-domain value holding b.
func BoolValue(b bool) Value { return Value{dom: Bool, b: b} }

// DatetimeValue returns a Datetime-domain value holding t.
func DatetimeValue(t time.Time) Value { return Value{dom: Datetime, i: t.UnixNano()} }

// DatetimeFromNanos returns a Datetime-domain value from Unix nanoseconds.
func DatetimeFromNanos(ns int64) Value { return Value{dom: Datetime, i: ns} }

// Domain returns the domain the value belongs to. Every constructor sets a
// concrete domain, so an Unspecified domain identifies the zero Value, which
// reads as the Object-domain null.
func (v Value) Domain() Domain {
	if v.dom == Unspecified {
		return Object
	}
	return v.dom
}

// IsNull reports whether v is the distinguished null of its domain. The
// zero Value is null.
func (v Value) IsNull() bool { return v.null || v.dom == Unspecified }

// Int returns the integer payload. It is only meaningful for Int-domain
// non-null values.
func (v Value) Int() int64 { return v.i }

// Float returns the value coerced to float64: the float payload for Float,
// the integer payload for Int, 0/1 for Bool, and NaN for null or
// non-numeric values.
func (v Value) Float() float64 {
	if v.IsNull() {
		return math.NaN()
	}
	switch v.dom {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	case Bool:
		if v.b {
			return 1
		}
		return 0
	default:
		return math.NaN()
	}
}

// Bool returns the boolean payload. It is only meaningful for Bool-domain
// non-null values.
func (v Value) Bool() bool { return v.b }

// Time returns the timestamp payload. It is only meaningful for
// Datetime-domain non-null values.
func (v Value) Time() time.Time { return time.Unix(0, v.i) }

// Str returns the string payload for Object/Category values, and the
// rendered form for everything else.
func (v Value) Str() string {
	if v.dom == Object || v.dom == Category {
		return v.s
	}
	return v.String()
}

// String renders the value the way it would appear in a CSV cell or a
// printed dataframe. Nulls render as "NA".
func (v Value) String() string {
	if v.IsNull() {
		return "NA"
	}
	switch v.dom {
	case Object, Category:
		return v.s
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		if v.b {
			return "true"
		}
		return "false"
	case Datetime:
		return time.Unix(0, v.i).UTC().Format("2006-01-02 15:04:05")
	default:
		return v.s
	}
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string {
	if v.IsNull() {
		return fmt.Sprintf("types.NullValue(%v)", v.dom)
	}
	return fmt.Sprintf("types.Value(%v:%s)", v.dom, v.String())
}

// Equal reports whether two values are the same domain member. Nulls of the
// same domain compare equal to each other (reflexive equality is needed for
// grouping and duplicate elimination, as in SQL's GROUP BY treatment of
// NULL).
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return v.IsNull() && o.IsNull()
	}
	if v.dom.Numeric() && o.dom.Numeric() && v.dom != o.dom {
		return v.Float() == o.Float()
	}
	if stringLike(v.dom) && stringLike(o.dom) {
		return v.s == o.s
	}
	if v.dom != o.dom {
		return false
	}
	switch v.dom {
	case Object, Category:
		return v.s == o.s
	case Int, Datetime:
		return v.i == o.i
	case Float:
		return v.f == o.f
	case Bool:
		return v.b == o.b
	}
	return false
}

// stringLike reports whether the domain stores a plain string payload, so
// Object and Category values compare by content across domains.
func stringLike(d Domain) bool { return d == Object || d == Category }

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o. Nulls
// sort before every non-null value; cross-domain comparisons order numerics
// by magnitude and otherwise fall back to domain order then rendered form.
func (v Value) Compare(o Value) int {
	switch {
	case v.IsNull() && o.IsNull():
		return 0
	case v.IsNull():
		return -1
	case o.IsNull():
		return 1
	}
	if v.dom.Numeric() && o.dom.Numeric() {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.dom != o.dom {
		return strings.Compare(v.String(), o.String())
	}
	switch v.dom {
	case Object, Category:
		return strings.Compare(v.s, o.s)
	case Int, Datetime:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case Float:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case Bool:
		switch {
		case !v.b && o.b:
			return -1
		case v.b && !o.b:
			return 1
		}
		return 0
	}
	return 0
}

// Less reports whether v orders strictly before o.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Key returns a string that is equal for equal values and distinct for
// distinct values, suitable for use as a hash-map key in grouping, joins and
// duplicate elimination.
func (v Value) Key() string {
	if v.IsNull() {
		return "\x00null"
	}
	switch v.dom {
	case Object, Category:
		return "s:" + v.s
	case Int:
		return "i:" + strconv.FormatInt(v.i, 10)
	case Datetime:
		return "t:" + strconv.FormatInt(v.i, 10)
	case Float:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
			// Integral floats share a key with equal ints so that
			// cross-domain Equal and Key agree.
			return "i:" + strconv.FormatInt(int64(v.f), 10)
		}
		return "f:" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		if v.b {
			return "i:1"
		}
		return "i:0"
	}
	return "s:" + v.s
}

// Interface returns the value as a native Go value (nil for null, string,
// int64, float64, bool, or time.Time).
func (v Value) Interface() any {
	if v.IsNull() {
		return nil
	}
	switch v.dom {
	case Object, Category:
		return v.s
	case Int:
		return v.i
	case Float:
		return v.f
	case Bool:
		return v.b
	case Datetime:
		return v.Time()
	}
	return nil
}

// FromGo converts a native Go value into a Value, inducing the domain from
// the dynamic type. Unhandled types render through fmt into Object.
func FromGo(x any) Value {
	switch t := x.(type) {
	case nil:
		return Null()
	case Value:
		return t
	case string:
		return String(t)
	case int:
		return IntValue(int64(t))
	case int32:
		return IntValue(int64(t))
	case int64:
		return IntValue(t)
	case float32:
		return FloatValue(float64(t))
	case float64:
		return FloatValue(t)
	case bool:
		return BoolValue(t)
	case time.Time:
		return DatetimeValue(t)
	default:
		return String(fmt.Sprint(t))
	}
}

package types

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDomainString(t *testing.T) {
	cases := map[Domain]string{
		Unspecified: "unspecified",
		Object:      "object",
		Int:         "int",
		Float:       "float",
		Bool:        "bool",
		Category:    "category",
		Datetime:    "datetime",
		Composite:   "composite",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Domain(%d).String() = %q, want %q", int(d), got, want)
		}
	}
	if got := Domain(99).String(); got != "domain(99)" {
		t.Errorf("out-of-range domain = %q", got)
	}
}

func TestParseDomainRoundTrip(t *testing.T) {
	for d := Object; d < Domain(NumDomains)+1; d++ {
		got, ok := ParseDomain(d.String())
		if !ok || got != d {
			t.Errorf("ParseDomain(%q) = %v, %v", d.String(), got, ok)
		}
	}
	if _, ok := ParseDomain("nonsense"); ok {
		t.Error("ParseDomain accepted nonsense")
	}
}

func TestDomainValid(t *testing.T) {
	if Unspecified.Valid() {
		t.Error("Unspecified should not be valid")
	}
	for _, d := range []Domain{Object, Int, Float, Bool, Category, Datetime, Composite} {
		if !d.Valid() {
			t.Errorf("%v should be valid", d)
		}
	}
}

func TestNullLiterals(t *testing.T) {
	for _, s := range []string{"", "NA", "NaN", "null", "NULL", "None", "N/A", "<NA>", "nan"} {
		if !IsNullLiteral(s) {
			t.Errorf("IsNullLiteral(%q) = false", s)
		}
	}
	for _, s := range []string{"0", "false", "na ", "x"} {
		if IsNullLiteral(s) {
			t.Errorf("IsNullLiteral(%q) = true", s)
		}
	}
}

func TestParseInt(t *testing.T) {
	v, err := Int.Parse("42")
	if err != nil || v.Int() != 42 || v.Domain() != Int {
		t.Fatalf("Parse(42) = %v, %v", v, err)
	}
	v, err = Int.Parse(" -7 ")
	if err != nil || v.Int() != -7 {
		t.Fatalf("Parse(' -7 ') = %v, %v", v, err)
	}
	if _, err := Int.Parse("4.5"); err == nil {
		t.Error("Parse('4.5') as int should fail")
	}
	v, err = Int.Parse("NA")
	if err != nil || !v.IsNull() || v.Domain() != Int {
		t.Fatalf("Parse(NA) = %v, %v", v, err)
	}
}

func TestParseFloatBoolDatetime(t *testing.T) {
	v, err := Float.Parse("3.25")
	if err != nil || v.Float() != 3.25 {
		t.Fatalf("float parse: %v %v", v, err)
	}
	for s, want := range map[string]bool{"true": true, "T": true, "FALSE": false, "f": false} {
		v, err := Bool.Parse(s)
		if err != nil || v.Bool() != want {
			t.Errorf("bool parse %q = %v, %v", s, v, err)
		}
	}
	v, err = Datetime.Parse("2020-06-02")
	if err != nil {
		t.Fatalf("datetime parse: %v", err)
	}
	if got := v.Time().UTC().Format("2006-01-02"); got != "2020-06-02" {
		t.Errorf("datetime = %s", got)
	}
	if _, err := Datetime.Parse("not a date"); err == nil {
		t.Error("bad datetime should fail")
	}
}

func TestCanParse(t *testing.T) {
	if !Int.CanParse("10") || Int.CanParse("ten") {
		t.Error("Int.CanParse wrong")
	}
	if !Float.CanParse("10") { // ints parse as floats
		t.Error("Float.CanParse(10) = false")
	}
	// Null literals are members of every domain.
	for _, d := range []Domain{Object, Int, Float, Bool, Category, Datetime} {
		if !d.CanParse("NA") {
			t.Errorf("%v.CanParse(NA) = false", d)
		}
	}
}

func TestValueZeroIsObjectNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Domain() != Object {
		t.Errorf("zero Value = %v domain %v", v, v.Domain())
	}
}

func TestFloatNaNBecomesNull(t *testing.T) {
	v := FloatValue(math.NaN())
	if !v.IsNull() || v.Domain() != Float {
		t.Errorf("FloatValue(NaN) = %#v", v)
	}
}

func TestValueFloatCoercion(t *testing.T) {
	if IntValue(3).Float() != 3 {
		t.Error("int→float")
	}
	if BoolValue(true).Float() != 1 || BoolValue(false).Float() != 0 {
		t.Error("bool→float")
	}
	if !math.IsNaN(Null().Float()) {
		t.Error("null→float should be NaN")
	}
	if !math.IsNaN(String("x").Float()) {
		t.Error("string→float should be NaN")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NA":    Null(),
		"hi":    String("hi"),
		"42":    IntValue(42),
		"1.5":   FloatValue(1.5),
		"true":  BoolValue(true),
		"false": BoolValue(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
	dt := DatetimeValue(time.Date(2020, 6, 2, 12, 0, 0, 0, time.UTC))
	if got := dt.String(); got != "2020-06-02 12:00:00" {
		t.Errorf("datetime string = %q", got)
	}
}

func TestEqualCrossDomainNumeric(t *testing.T) {
	if !IntValue(3).Equal(FloatValue(3)) {
		t.Error("3 (int) should equal 3.0 (float)")
	}
	if IntValue(3).Equal(FloatValue(3.5)) {
		t.Error("3 != 3.5")
	}
	if IntValue(3).Equal(String("3")) {
		t.Error("int 3 should not equal string \"3\"")
	}
	if !Null().Equal(NullValue(Int)) {
		t.Error("nulls compare equal across domains (grouping semantics)")
	}
	if Null().Equal(IntValue(0)) {
		t.Error("null != 0")
	}
}

func TestKeyAgreesWithEqual(t *testing.T) {
	pairs := []struct {
		a, b Value
	}{
		{IntValue(3), FloatValue(3)},
		{BoolValue(true), IntValue(1)},
		{Null(), NullValue(Float)},
	}
	for _, p := range pairs {
		if p.a.Equal(p.b) != (p.a.Key() == p.b.Key()) {
			t.Errorf("Equal/Key disagree for %v vs %v", p.a, p.b)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	if IntValue(1).Compare(IntValue(2)) != -1 {
		t.Error("1 < 2")
	}
	if FloatValue(2.5).Compare(IntValue(2)) != 1 {
		t.Error("2.5 > 2")
	}
	if Null().Compare(IntValue(-100)) != -1 {
		t.Error("null sorts first")
	}
	if String("a").Compare(String("b")) != -1 {
		t.Error("string order")
	}
	if BoolValue(false).Compare(BoolValue(true)) != -1 {
		t.Error("false < true")
	}
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry and consistency with Equal, property-based.
	gen := func(kind uint8, i int64, f float64, s string) Value {
		switch kind % 5 {
		case 0:
			return IntValue(i % 100)
		case 1:
			return FloatValue(float64(int(f*10) % 100)) // avoid NaN
		case 2:
			return String(s)
		case 3:
			return BoolValue(i%2 == 0)
		default:
			return Null()
		}
	}
	prop := func(k1 uint8, i1 int64, f1 float64, s1 string, k2 uint8, i2 int64, f2 float64, s2 string) bool {
		a, b := gen(k1, i1, f1, s1), gen(k2, i2, f2, s2)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Equal(b) && a.Compare(b) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	prop := func(a, b, c int64, fa, fb, fc float64) bool {
		vals := []Value{IntValue(a), FloatValue(fb), IntValue(c), FloatValue(fa), IntValue(b), FloatValue(fc)}
		for _, x := range vals {
			for _, y := range vals {
				for _, z := range vals {
					if x.Compare(y) <= 0 && y.Compare(z) <= 0 && x.Compare(z) > 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromGoRoundTrip(t *testing.T) {
	if FromGo(5).Domain() != Int || FromGo(5).Int() != 5 {
		t.Error("FromGo(int)")
	}
	if FromGo("x").Str() != "x" {
		t.Error("FromGo(string)")
	}
	if FromGo(nil).IsNull() != true {
		t.Error("FromGo(nil)")
	}
	if FromGo(2.5).Float() != 2.5 {
		t.Error("FromGo(float)")
	}
	if FromGo(true).Bool() != true {
		t.Error("FromGo(bool)")
	}
	v := FromGo(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	if v.Domain() != Datetime {
		t.Error("FromGo(time)")
	}
	if FromGo(IntValue(9)).Int() != 9 {
		t.Error("FromGo(Value) passthrough")
	}
}

func TestInterface(t *testing.T) {
	if IntValue(4).Interface().(int64) != 4 {
		t.Error("interface int")
	}
	if Null().Interface() != nil {
		t.Error("interface null")
	}
	if String("s").Interface().(string) != "s" {
		t.Error("interface string")
	}
}

func TestCompositeValue(t *testing.T) {
	payload := &struct{ X int }{X: 7}
	v := CompositeValue(payload)
	if v.Domain() != Composite || v.IsNull() {
		t.Fatalf("composite value = %#v", v)
	}
	if got := v.CompositePayload(); got != payload {
		t.Errorf("payload = %v", got)
	}
	if IntValue(1).CompositePayload() != nil {
		t.Error("non-composite payload should be nil")
	}
	if NullValue(Composite).CompositePayload() != nil {
		t.Error("null composite payload should be nil")
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// For every non-null value, rendering then parsing in the same domain
	// recovers an equal value (the Σ* representation is faithful).
	prop := func(i int64, f float64, s string, b bool) bool {
		vals := []Value{IntValue(i), BoolValue(b), String(s)}
		if !math.IsNaN(f) && !math.IsInf(f, 0) {
			vals = append(vals, FloatValue(f))
		}
		for _, v := range vals {
			if IsNullLiteral(v.String()) {
				continue // strings spelling null round-trip to null by design
			}
			parsed, err := v.Domain().Parse(v.String())
			if err != nil || !parsed.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

package types

import "fmt"

// composite values carry an opaque payload (in practice a *core.DataFrame
// produced by GROUPBY's collect aggregate). The payload is stored out of the
// main Value struct so that the common scalar path stays pointer-free.

// CompositeValue returns a Composite-domain value holding the payload.
func CompositeValue(payload any) Value {
	return Value{dom: Composite, s: fmt.Sprintf("<composite %p>", payload), compPayload: payload}
}

// CompositePayload returns the payload of a composite value, or nil if v is
// not composite (or is the composite null).
func (v Value) CompositePayload() any {
	if v.dom != Composite || v.null {
		return nil
	}
	return v.compPayload
}

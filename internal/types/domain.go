// Package types defines the value domains of the dataframe data model.
//
// Following Section 4.2 of "Towards Scalable Dataframe Systems" (Petersohn et
// al., VLDB 2020), dataframe cells come from a known set of domains
// Dom = {Σ*, int, float, bool, category} (plus datetime, which the paper
// notes is common in practice). Each domain contains a distinguished null
// value and a parsing function p_i : Σ* → dom_i that interprets raw strings
// as domain values.
package types

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Domain identifies one of the known value domains Dom.
//
// Unspecified is not itself a domain: it marks a column whose domain has not
// yet been induced by the schema-induction function S (see internal/schema).
type Domain int

const (
	// Unspecified marks a column whose domain is yet to be induced.
	Unspecified Domain = iota
	// Object is Σ*, the set of finite strings: the default, uninterpreted
	// domain.
	Object
	// Int is the domain of 64-bit signed integers.
	Int
	// Float is the domain of 64-bit floating point numbers.
	Float
	// Bool is the boolean domain.
	Bool
	// Category is a string domain with few distinct values, dictionary
	// encoded by the vector layer.
	Category
	// Datetime is the domain of timestamps, stored as Unix nanoseconds.
	Datetime
	// Composite is the domain of composite cell values produced by
	// GROUPBY's collect aggregation (Section 4.3): a cell holding a whole
	// sub-dataframe. It is transient — composite cells are consumed by a
	// following MAP (as in the pivot plan of Figure 6) rather than stored.
	Composite

	numDomains
)

// NumDomains is the count of concrete domains (excluding Unspecified).
const NumDomains = int(numDomains) - 1

var domainNames = [...]string{
	Unspecified: "unspecified",
	Object:      "object",
	Int:         "int",
	Float:       "float",
	Bool:        "bool",
	Category:    "category",
	Datetime:    "datetime",
	Composite:   "composite",
}

// String returns the lower-case name of the domain.
func (d Domain) String() string {
	if d < 0 || int(d) >= len(domainNames) {
		return fmt.Sprintf("domain(%d)", int(d))
	}
	return domainNames[d]
}

// Valid reports whether d is a concrete domain (not Unspecified and in
// range).
func (d Domain) Valid() bool { return d > Unspecified && d < numDomains }

// Numeric reports whether values of the domain participate in arithmetic.
func (d Domain) Numeric() bool { return d == Int || d == Float || d == Bool }

// ParseDomain maps a domain name (as produced by Domain.String) back to the
// Domain. It returns Unspecified and false for unknown names.
func ParseDomain(name string) (Domain, bool) {
	for d, n := range domainNames {
		if n == name {
			return Domain(d), true
		}
	}
	return Unspecified, false
}

// nullLiterals are the string spellings recognized as the distinguished null
// value by every parsing function.
var nullLiterals = map[string]bool{
	"":     true,
	"NA":   true,
	"N/A":  true,
	"NaN":  true,
	"nan":  true,
	"null": true,
	"NULL": true,
	"None": true,
	"<NA>": true,
}

// IsNullLiteral reports whether the raw string s spells the distinguished
// null value.
func IsNullLiteral(s string) bool { return nullLiterals[s] }

// datetimeLayouts are the timestamp formats the Datetime parsing function
// accepts, tried in order.
var datetimeLayouts = []string{
	time.RFC3339Nano,
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05",
	"2006-01-02",
	"01/02/2006 15:04:05",
	"01/02/2006",
}

// Parse applies the domain's parsing function p_i to the raw string s,
// yielding a Value in the domain (possibly the distinguished null). Parse
// returns an error when s is neither null nor a member of the domain.
func (d Domain) Parse(s string) (Value, error) {
	if IsNullLiteral(s) {
		return NullValue(d), nil
	}
	switch d {
	case Object:
		return String(s), nil
	case Category:
		return CategoryValue(s), nil
	case Int:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return NullValue(d), fmt.Errorf("parse %q as int: %w", s, err)
		}
		return IntValue(i), nil
	case Float:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return NullValue(d), fmt.Errorf("parse %q as float: %w", s, err)
		}
		return FloatValue(f), nil
	case Bool:
		// Only true/false spellings are boolean literals. Accepting
		// yes/no or 0/1 here would make schema induction mis-type
		// string and integer columns (pandas reads "Yes"/"No" as
		// object and 0/1 as int64).
		switch strings.ToLower(strings.TrimSpace(s)) {
		case "true", "t":
			return BoolValue(true), nil
		case "false", "f":
			return BoolValue(false), nil
		}
		return NullValue(d), fmt.Errorf("parse %q as bool: not a boolean literal", s)
	case Datetime:
		trimmed := strings.TrimSpace(s)
		for _, layout := range datetimeLayouts {
			if t, err := time.Parse(layout, trimmed); err == nil {
				return DatetimeValue(t), nil
			}
		}
		return NullValue(d), fmt.Errorf("parse %q as datetime: no known layout", s)
	case Unspecified:
		return String(s), nil
	case Composite:
		return Value{}, fmt.Errorf("parse %q: composite cells are not parseable from Σ*", s)
	default:
		return Value{}, fmt.Errorf("parse into invalid domain %v", d)
	}
}

// CanParse reports whether s is null or parseable as a member of d. It is
// the membership test used by schema induction.
func (d Domain) CanParse(s string) bool {
	_, err := d.Parse(s)
	return err == nil
}

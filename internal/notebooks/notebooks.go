// Package notebooks synthesizes a corpus of Python-like analysis scripts
// whose pandas-call mix follows the ranking reported in Section 4.6 /
// Figure 7 of the paper. The real study ran over 1M GitHub notebooks (Rule
// et al.), which are not available offline; the generator preserves the
// relevant structure — a heavy-tailed frequency distribution from read_csv
// and head down to kurtosis, notebook-length variation, chained calls on
// one line, and non-pandas noise — so the extraction+ranking pipeline is
// exercised end to end.
package notebooks

import (
	"fmt"
	"math/rand"
	"strings"
)

// weightedCall is one pandas function with its relative frequency weight,
// ordered to match the paper's Figure 7 ranking (read_csv and inspection
// functions most dense, statistical tails like kurtosis least).
type weightedCall struct {
	name   string
	weight float64
	// template renders an invocation; {} is replaced by a variable name.
	template string
}

var callMix = []weightedCall{
	{"read_csv", 100, "{} = pd.read_csv('data_%d.csv')"},
	{"head", 92, "{}.head()"},
	{"plot", 80, "{}.plot()"},
	{"shape", 74, "{}.shape"},
	{"loc", 70, "{}.loc[{}['col%d'] > 0]"},
	{"iloc", 62, "{}.iloc[%d]"},
	{"mean", 58, "{}['col%d'].mean()"},
	{"sum", 55, "{}['col%d'].sum()"},
	{"groupby", 52, "{}.groupby('col%d').size()"},
	{"drop", 46, "{} = {}.drop(columns=['col%d'])"},
	{"append", 44, "{} = {}.append(other)"},
	{"apply", 40, "{}['col%d'].apply(lambda x: x * 2)"},
	{"merge", 38, "{} = {}.merge(other, on='col%d')"},
	{"columns", 36, "{}.columns"},
	{"index", 33, "{}.index"},
	{"max", 31, "{}['col%d'].max()"},
	{"DataFrame", 30, "{} = pd.DataFrame(data%d)"},
	{"values", 28, "{}.values"},
	{"astype", 26, "{}['col%d'] = {}['col%d'].astype(int)"},
	{"describe", 24, "{}.describe()"},
	{"dropna", 22, "{} = {}.dropna()"},
	{"sort_values", 20, "{} = {}.sort_values('col%d')"},
	{"fillna", 18, "{} = {}.fillna(0)"},
	{"set_index", 15, "{} = {}.set_index('col%d')"},
	{"reset_index", 13, "{} = {}.reset_index()"},
	{"isnull", 12, "{}.isnull()"},
	{"concat", 11, "{} = pd.concat([{}, other])"},
	{"join", 10, "{} = {}.join(other)"},
	{"tail", 9, "{}.tail()"},
	{"unique", 8, "{}['col%d'].unique()"},
	{"read_excel", 7, "{} = pd.read_excel('book%d.xlsx')"},
	{"pivot", 5, "{} = {}.pivot(index='a', columns='b', values='c')"},
	{"get_dummies", 4, "{} = pd.get_dummies({})"},
	{"transpose", 3, "{} = {}.transpose()"},
	{"cov", 2.5, "{}.cov()"},
	{"min", 2.2, "{}['col%d'].min()"},
	{"count", 2, "{}['col%d'].count()"},
	{"kurtosis", 1, "{}['col%d'].kurtosis()"},
}

// ExpectedRanking returns the call names in descending corpus-weight order
// (the ground truth the Figure 7 reproduction is validated against).
func ExpectedRanking() []string {
	out := make([]string, len(callMix))
	for i, c := range callMix {
		out[i] = c.name
	}
	return out
}

// Options parameterizes corpus generation.
type Options struct {
	// Notebooks is the number of scripts to generate.
	Notebooks int
	// Seed fixes the PRNG.
	Seed int64
	// PandasFraction is the fraction of notebooks that import pandas at
	// all; the paper found ~40% of 1M notebooks used pandas.
	PandasFraction float64
}

// DefaultOptions matches the paper's corpus profile at a given scale.
func DefaultOptions(n int) Options {
	return Options{Notebooks: n, Seed: 468, PandasFraction: 0.4}
}

// Notebook is one generated script.
type Notebook struct {
	Name   string
	Source string
	// UsesPandas mirrors the paper's 40% observation.
	UsesPandas bool
}

// Generate produces the synthetic corpus.
func Generate(opts Options) []Notebook {
	rng := rand.New(rand.NewSource(opts.Seed))
	total := 0.0
	for _, c := range callMix {
		total += c.weight
	}
	pick := func() weightedCall {
		r := rng.Float64() * total
		for _, c := range callMix {
			if r < c.weight {
				return c
			}
			r -= c.weight
		}
		return callMix[0]
	}

	out := make([]Notebook, opts.Notebooks)
	for i := range out {
		usesPandas := rng.Float64() < opts.PandasFraction
		var b strings.Builder
		fmt.Fprintf(&b, "# notebook %d\n", i)
		if !usesPandas {
			b.WriteString("import numpy as np\n")
			for k := 0; k < 5+rng.Intn(20); k++ {
				fmt.Fprintf(&b, "x%d = np.arange(%d).reshape(%d, -1)\n", k, 12+k, 3)
			}
			out[i] = Notebook{Name: fmt.Sprintf("nb_%05d.py", i), Source: b.String()}
			continue
		}
		b.WriteString("import pandas as pd\n")
		varName := fmt.Sprintf("df%d", rng.Intn(3))
		stmts := 8 + rng.Intn(40)
		for k := 0; k < stmts; k++ {
			c := pick()
			line := strings.ReplaceAll(c.template, "{}", varName)
			if strings.Contains(line, "%d") {
				line = fmt.Sprintf(line, rng.Intn(9))
			}
			// Occasionally chain a second call on the same line, the
			// co-occurrence pattern of Section 4.6 (e.g.
			// df.dropna().describe()) — rare enough not to distort the
			// overall ranking.
			if rng.Intn(15) == 0 {
				line = strings.TrimSuffix(line, "()") + "().describe()"
			}
			b.WriteString(line)
			b.WriteByte('\n')
			if rng.Intn(10) == 0 {
				fmt.Fprintf(&b, "print(%s)  # inspect\n", varName)
			}
		}
		out[i] = Notebook{Name: fmt.Sprintf("nb_%05d.py", i), Source: b.String(), UsesPandas: true}
	}
	return out
}

package notebooks

import (
	"sort"
	"testing"

	"repro/internal/pycalls"
)

func TestGenerateDeterministicAndSized(t *testing.T) {
	a := Generate(DefaultOptions(50))
	b := Generate(DefaultOptions(50))
	if len(a) != 50 {
		t.Fatalf("notebooks = %d", len(a))
	}
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatal("generation must be deterministic")
		}
	}
}

func TestPandasFractionApproximatelyForty(t *testing.T) {
	nbs := Generate(DefaultOptions(1000))
	pandas := 0
	for _, nb := range nbs {
		if nb.UsesPandas {
			pandas++
		}
	}
	frac := float64(pandas) / float64(len(nbs))
	if frac < 0.3 || frac > 0.5 {
		t.Errorf("pandas fraction = %v, paper reports ~0.4", frac)
	}
}

func TestFigure7RankingRecovered(t *testing.T) {
	// The end-to-end Figure 7 pipeline: generate corpus → extract calls →
	// rank by total occurrences. The recovered top of the ranking must
	// match the generator's ground truth, and read_csv-family inspection
	// calls must dominate statistical tails like kurtosis.
	nbs := Generate(DefaultOptions(400))
	counts := pycalls.NewCounts()
	vocab := pycalls.PandasVocabulary()
	for _, nb := range nbs {
		counts.AddFile(pycalls.Extract(nb.Source), vocab)
	}

	type kv struct {
		name string
		n    int
	}
	var ranked []kv
	for name, n := range counts.Total {
		ranked = append(ranked, kv{name, n})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })

	if len(ranked) < 20 {
		t.Fatalf("only %d distinct functions extracted", len(ranked))
	}
	top5 := map[string]bool{}
	for _, r := range ranked[:5] {
		top5[r.name] = true
	}
	if !top5["read_csv"] || !top5["head"] {
		t.Errorf("read_csv and head must top the ranking; top = %v", ranked[:5])
	}
	if counts.Total["kurtosis"] >= counts.Total["read_csv"] {
		t.Error("kurtosis must sit in the tail, as in Figure 7")
	}
	// Per-file counts exist and are bounded by totals.
	for name, files := range counts.Files {
		if files > counts.Total[name] {
			t.Errorf("%s appears in more files than occurrences", name)
		}
	}
	// Chained describe() calls produce co-occurrences.
	if len(counts.CoOccur) == 0 {
		t.Error("expected co-occurring calls in the corpus")
	}
}

func TestExpectedRankingIsDescending(t *testing.T) {
	r := ExpectedRanking()
	if r[0] != "read_csv" || r[len(r)-1] != "kurtosis" {
		t.Errorf("ranking endpoints wrong: %s ... %s", r[0], r[len(r)-1])
	}
	if len(r) < 30 {
		t.Error("ranking too small")
	}
}

func TestNonPandasNotebooksHaveNoPandas(t *testing.T) {
	nbs := Generate(DefaultOptions(200))
	vocab := pycalls.PandasVocabulary()
	for _, nb := range nbs {
		if nb.UsesPandas {
			continue
		}
		counts := pycalls.NewCounts()
		counts.AddFile(pycalls.Extract(nb.Source), vocab)
		if counts.Total["read_csv"] > 0 || counts.Total["head"] > 0 {
			t.Fatalf("non-pandas notebook contains pandas calls:\n%s", nb.Source)
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/types"
	"repro/internal/workload"
)

// Figure 8 compares two plans that pivot the SALES table around "Month":
//
//	(a) original: GROUPBY(collect Month) → MAP(flatten) → TOLABELS(Month)
//	    → T, hashing the unsorted Month column; and
//	(b) rewrite:  pivot over the *sorted* Year column with a streaming
//	    group-by, then TRANSPOSE the result — sound because transposing a
//	    pivot is the pivot over the other column (Section 4.4).
//
// The rewrite wins when the optimizer can exploit the sorted order of Year.

// Figure8Plans builds both plans over the sales frame.
func Figure8Plans(sales *core.DataFrame) (original, optimized algebra.Node, err error) {
	months, err := algebra.DistinctValues(sales, "Month")
	if err != nil {
		return nil, nil, err
	}
	years, err := algebra.DistinctValues(sales, "Year")
	if err != nil {
		return nil, nil, err
	}
	src := &algebra.Source{DF: sales, Name: "sales"}

	// (a) pivot around Month directly: hash group-by on the unsorted
	// Month column; index attribute is Year.
	original = algebra.PivotPlan(src, "Month", "Year", "Sales", years, false)

	// (b) pivot around the sorted Year column with the streaming
	// group-by, then transpose: T(pivot Year) = pivot Month.
	optimized = &algebra.Transpose{
		Input: algebra.PivotPlan(src, "Year", "Month", "Sales", months, true),
	}
	return original, optimized, nil
}

// Figure8Result reports both plan timings at one scale.
type Figure8Result struct {
	Years, Months int
	Original      time.Duration
	Optimized     time.Duration
	Speedup       float64
}

// RunFigure8 times both pivot plans over year-sorted sales data and checks
// they agree cell-for-cell.
func RunFigure8(yearCounts []int, months int, repeats int) ([]Figure8Result, error) {
	engine := eager.New() // plan choice, not parallelism, is under test
	if repeats <= 0 {
		repeats = 1
	}
	var results []Figure8Result
	for _, years := range yearCounts {
		sales := workload.Sales(years, months, 11)
		original, optimized, err := Figure8Plans(sales)
		if err != nil {
			return nil, err
		}
		a, err := engine.Execute(original)
		if err != nil {
			return nil, fmt.Errorf("original plan: %w", err)
		}
		b, err := engine.Execute(optimized)
		if err != nil {
			return nil, fmt.Errorf("optimized plan: %w", err)
		}
		if !pivotEqual(a, b) {
			return nil, fmt.Errorf("plans disagree at %d years:\n%s\nvs\n%s", years, a, b)
		}
		res := Figure8Result{Years: years, Months: months}
		res.Original, _, err = timeEngine(engine, original, repeats)
		if err != nil {
			return nil, err
		}
		res.Optimized, _, err = timeEngine(engine, optimized, repeats)
		if err != nil {
			return nil, err
		}
		if res.Optimized > 0 {
			res.Speedup = float64(res.Original) / float64(res.Optimized)
		}
		results = append(results, res)
	}
	return results, nil
}

// pivotEqual compares the two pivot results; both orient months as rows and
// years as columns, but plan (a) derives column order from Year values and
// plan (b) from group order, so compare by label lookup.
func pivotEqual(a, b *core.DataFrame) bool {
	if a.NRows() != b.NRows() || a.NCols() != b.NCols() {
		return false
	}
	rowPos := make(map[string]int, b.NRows())
	for i := 0; i < b.NRows(); i++ {
		rowPos[b.RowLabels().Value(i).Key()] = i
	}
	colPos := make(map[string]int, b.NCols())
	for j := 0; j < b.NCols(); j++ {
		colPos[keyOfLabel(b, j)] = j
	}
	for i := 0; i < a.NRows(); i++ {
		bi, ok := rowPos[a.RowLabels().Value(i).Key()]
		if !ok {
			return false
		}
		for j := 0; j < a.NCols(); j++ {
			bj, ok := colPos[keyOfLabel(a, j)]
			if !ok {
				return false
			}
			if !a.Value(i, j).Equal(b.Value(bi, bj)) {
				return false
			}
		}
	}
	return true
}

func keyOfLabel(df *core.DataFrame, j int) string {
	return types.String(df.ColName(j)).Key()
}

// FormatFigure8 renders the plan comparison.
func FormatFigure8(results []Figure8Result) string {
	out := "Figure 8 — pivot-around-Month plan comparison (sorted-Year rewrite)\n"
	out += fmt.Sprintf("%8s %8s %14s %14s %9s\n", "years", "months", "plan(a)", "plan(b)", "speedup")
	for _, r := range results {
		out += fmt.Sprintf("%8d %8d %14s %14s %8.2fx\n", r.Years, r.Months, r.Original, r.Optimized, r.Speedup)
	}
	return out
}

package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/eager"
	"repro/internal/modin"
	"repro/internal/session"
	"repro/internal/workload"
)

func TestFigure2PlansProduceExpectedShapes(t *testing.T) {
	df := workload.Taxi(workload.DefaultTaxiOptions(300))
	engine := eager.New()
	for _, q := range Figure2Queries {
		plan, err := Figure2Plan(q, df)
		if err != nil {
			t.Fatal(err)
		}
		out, err := engine.Execute(plan)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		switch q {
		case QueryMap:
			if out.NRows() != 300 || out.NCols() != df.NCols() {
				t.Errorf("map shape = %dx%d", out.NRows(), out.NCols())
			}
		case QueryGroupByN:
			// 6 passenger counts + the null group.
			if out.NRows() != 7 {
				t.Errorf("groupby(n) groups = %d\n%s", out.NRows(), out)
			}
		case QueryGroupBy1:
			if out.NRows() != 1 {
				t.Errorf("groupby(1) rows = %d", out.NRows())
			}
		case QueryTranspose:
			if out.NRows() != df.NCols() || out.NCols() != 300 {
				t.Errorf("transpose shape = %dx%d", out.NRows(), out.NCols())
			}
		}
	}
	if _, err := Figure2Plan("bogus", df); err == nil {
		t.Error("unknown query should fail")
	}
}

func TestFigure2EnginesAgreeOnEveryQuery(t *testing.T) {
	df := workload.Taxi(workload.DefaultTaxiOptions(500))
	base := eager.New()
	par := modin.New()
	for _, q := range Figure2Queries {
		plan, err := Figure2Plan(q, df)
		if err != nil {
			t.Fatal(err)
		}
		a, err := base.Execute(plan)
		if err != nil {
			t.Fatalf("%s baseline: %v", q, err)
		}
		b, err := par.Execute(plan)
		if err != nil {
			t.Fatalf("%s modin: %v", q, err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: engines disagree", q)
		}
	}
}

func TestRunFigure2SmallSweep(t *testing.T) {
	cfg := Figure2Config{
		RowCounts:               []int{500, 1500},
		Repeats:                 1,
		BaselineTransposeBudget: 9 * 800, // transposes DNF at 1500 rows
	}
	results, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("results = %d", len(results))
	}
	var sawDNF, sawCompletion bool
	for _, r := range results {
		if r.Query == QueryTranspose {
			if r.Rows == 1500 && !r.BaselineDNF {
				t.Error("baseline transpose should DNF at 1500 rows under budget")
			}
			if r.BaselineDNF {
				sawDNF = true
			}
			if r.Modin == 0 {
				t.Error("modin must complete the transpose the baseline cannot")
			}
		}
		if !r.BaselineDNF && r.Baseline > 0 {
			sawCompletion = true
		}
	}
	if !sawDNF || !sawCompletion {
		t.Error("sweep should include both completions and a DNF")
	}
	text := FormatFigure2(results)
	if !strings.Contains(text, "DNF") || !strings.Contains(text, "groupby(n)") {
		t.Errorf("format missing content:\n%s", text)
	}
}

func TestRunFigure8PlansAgreeAndFormat(t *testing.T) {
	results, err := RunFigure8([]int{50, 200}, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	text := FormatFigure8(results)
	if !strings.Contains(text, "plan(a)") {
		t.Errorf("format wrong:\n%s", text)
	}
}

func TestFigure8RewriteWinsAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// The paper's claim: the sorted-Year streaming plan beats hashing the
	// unsorted Month column, increasingly so with more groups.
	results, err := RunFigure8([]int{3000}, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Optimized >= r.Original {
		t.Logf("warning: rewrite did not win at this scale: %v vs %v", r.Original, r.Optimized)
	}
}

func TestRunFigure7RankingShape(t *testing.T) {
	res := RunFigure7(300)
	if res.PandasFraction < 0.25 || res.PandasFraction > 0.55 {
		t.Errorf("pandas fraction = %v", res.PandasFraction)
	}
	if len(res.ByTotal) < 20 {
		t.Fatalf("functions ranked = %d", len(res.ByTotal))
	}
	top := map[string]bool{res.ByTotal[0].Name: true, res.ByTotal[1].Name: true, res.ByTotal[2].Name: true}
	if !top["read_csv"] && !top["head"] {
		t.Errorf("top-3 = %v", res.ByTotal[:3])
	}
	// kurtosis is the Figure 7 tail anchor.
	last := res.ByTotal[len(res.ByTotal)-1]
	if last.Total > res.ByTotal[0].Total/5 {
		t.Errorf("distribution not heavy-tailed: head=%d tail=%d", res.ByTotal[0].Total, last.Total)
	}
	text := FormatFigure7(res)
	if !strings.Contains(text, "read_csv") || !strings.Contains(text, "co-occurrences") {
		t.Errorf("format wrong:\n%s", text)
	}
}

func TestRunTable3OurEnginesSupportEverything(t *testing.T) {
	res := RunTable3(modin.New(), eager.New())
	for _, f := range Table3Features {
		if !res.Support[f]["modin"] {
			t.Errorf("modin should support %q", f)
		}
		if !res.Support[f]["pandas-baseline"] {
			t.Errorf("baseline should support %q", f)
		}
	}
	// Reference column sanity, per the published table.
	if res.Support["TRANSPOSE"]["Spark"] || res.Support["TRANSPOSE"]["Dask"] {
		t.Error("Spark/Dask do not support TRANSPOSE in Table 3")
	}
	if !res.Support["Relational Operators"]["Spark"] {
		t.Error("Spark supports relational operators in Table 3")
	}
	text := FormatTable3(res)
	if !strings.Contains(text, "modin") || !strings.Contains(text, "FROMLABELS") {
		t.Errorf("format wrong:\n%s", text)
	}
}

func TestRunSchemaInductionDeferralWins(t *testing.T) {
	res, err := RunSchemaInduction(4000, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Deferring induction past a 1-in-10 filter must beat inducing the
	// full frame first — the Section 5.1.1 claim.
	if res.DeferThenFilter >= res.InduceThenFilter {
		t.Errorf("defer=%v should beat induce-first=%v", res.DeferThenFilter, res.InduceThenFilter)
	}
	// Cached re-induction is far cheaper than the initial induction.
	if res.CachedReuse >= res.InduceAll {
		t.Errorf("cached=%v should beat fresh=%v", res.CachedReuse, res.InduceAll)
	}
}

func TestRunTransposeAblation(t *testing.T) {
	res, err := RunTransposeAblation(400, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Physical == 0 || res.Blocked == 0 {
		t.Error("both strategies should be timed")
	}
}

func TestRunEvaluationModes(t *testing.T) {
	results, err := RunEvaluationModes(3000, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("modes = %d", len(results))
	}
	byMode := map[session.Mode]EvaluationModesResult{}
	for _, r := range results {
		byMode[r.Mode] = r
	}
	// Opportunistic serves the first view no slower than eager (both have
	// it materialized by then), and lazy pays only the prefix.
	if byMode[session.Opportunistic].TimeToFirstView > byMode[session.Eager].TimeToFirstView*3 {
		t.Errorf("opportunistic first view %v vs eager %v",
			byMode[session.Opportunistic].TimeToFirstView, byMode[session.Eager].TimeToFirstView)
	}
	si, err := RunSchemaInduction(500, 6)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := RunTransposeAblation(100, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatAblations(si, ta, results)
	for _, want := range []string{"E8", "E9", "E10", "opportunistic"} {
		if !strings.Contains(text, want) {
			t.Errorf("ablation format missing %s:\n%s", want, text)
		}
	}
}

// Package experiments defines the paper's experiments as reusable runners
// shared by the cmd/ binaries and the root benchmark suite, so every table
// and figure is regenerated from one implementation.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/expr"
	"repro/internal/modin"
	"repro/internal/workload"
)

// Figure2Query is one of the four microbenchmark queries of Section 3.2.
type Figure2Query string

// The four queries of Figure 2.
const (
	QueryMap       Figure2Query = "map"
	QueryGroupByN  Figure2Query = "groupby(n)"
	QueryGroupBy1  Figure2Query = "groupby(1)"
	QueryTranspose Figure2Query = "transpose"
)

// Figure2Queries lists the queries in the paper's order.
var Figure2Queries = []Figure2Query{QueryMap, QueryGroupByN, QueryGroupBy1, QueryTranspose}

// Figure2Plan builds the query's algebra plan over the taxi frame, exactly
// as Section 3.2 describes them:
//
//	map:        check each value for null, replacing with TRUE/FALSE
//	groupby(n): group by the non-null passenger_count, count rows per group
//	groupby(1): count the non-null rows of the dataframe (one group)
//	transpose:  swap rows and columns, then apply a simple map to the rows
func Figure2Plan(q Figure2Query, df *core.DataFrame) (algebra.Node, error) {
	src := &algebra.Source{DF: df, Name: "taxi"}
	switch q {
	case QueryMap:
		return &algebra.Map{Input: src, Fn: algebra.IsNullFn()}, nil
	case QueryGroupByN:
		return &algebra.GroupBy{Input: src, Spec: expr.GroupBySpec{
			Keys: []string{"passenger_count"},
			Aggs: []expr.AggSpec{{Agg: expr.AggSize, As: "trips"}},
		}}, nil
	case QueryGroupBy1:
		return &algebra.GroupBy{Input: src, Spec: expr.GroupBySpec{
			Aggs: []expr.AggSpec{{Col: "passenger_count", Agg: expr.AggCount, As: "non_null_rows"}},
		}}, nil
	case QueryTranspose:
		return &algebra.Map{
			Input: &algebra.Transpose{Input: src},
			Fn:    algebra.IsNullFn(),
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown figure-2 query %q", q)
}

// Figure2Result is one measured cell of Figure 2.
type Figure2Result struct {
	Query    Figure2Query
	Rows     int
	Baseline time.Duration
	Modin    time.Duration
	// BaselineDNF marks the pandas failure mode: the materialization
	// budget was exceeded (the paper's "unable to run transpose beyond 6
	// GB" / 2-hour timeout).
	BaselineDNF bool
	Speedup     float64
}

// Figure2Config parameterizes the sweep.
type Figure2Config struct {
	// RowCounts is the dataset-size sweep, standing in for the paper's
	// 20–250 GB replication sweep.
	RowCounts []int
	// Repeats takes the best of N runs per cell.
	Repeats int
	// BaselineTransposeBudget is the baseline's transpose cell budget; 0
	// disables failure injection.
	BaselineTransposeBudget int
	// Queries restricts the sweep; nil runs all four.
	Queries []Figure2Query
}

// DefaultFigure2Config is the laptop-scale sweep.
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{
		RowCounts:               []int{20_000, 50_000, 100_000, 200_000},
		Repeats:                 3,
		BaselineTransposeBudget: 9 * 60_000, // baseline transposes DNF above 60k rows
	}
}

// RunFigure2 executes the sweep and returns one result per (query, size).
func RunFigure2(cfg Figure2Config) ([]Figure2Result, error) {
	queries := cfg.Queries
	if queries == nil {
		queries = Figure2Queries
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	baseline := &eager.Engine{TransposeCellBudget: cfg.BaselineTransposeBudget}
	parallel := modin.New()

	var results []Figure2Result
	for _, rows := range cfg.RowCounts {
		df := workload.Taxi(workload.DefaultTaxiOptions(rows))
		// Force induction up front so both engines run over typed data,
		// as both pandas and MODIN would after ingest.
		df = algebra.InduceFrame(df)
		for _, q := range queries {
			plan, err := Figure2Plan(q, df)
			if err != nil {
				return nil, err
			}
			res := Figure2Result{Query: q, Rows: rows}
			res.Baseline, res.BaselineDNF, err = timeEngine(baseline, plan, cfg.Repeats)
			if err != nil {
				return nil, fmt.Errorf("baseline %s/%d: %w", q, rows, err)
			}
			res.Modin, _, err = timeEngine(parallel, plan, cfg.Repeats)
			if err != nil {
				return nil, fmt.Errorf("modin %s/%d: %w", q, rows, err)
			}
			if !res.BaselineDNF && res.Modin > 0 {
				res.Speedup = float64(res.Baseline) / float64(res.Modin)
			}
			results = append(results, res)
		}
	}
	return results, nil
}

// timeEngine returns the best-of-N wall time, reporting budget failures as
// DNF rather than errors.
func timeEngine(e algebra.Engine, plan algebra.Node, repeats int) (time.Duration, bool, error) {
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		_, err := e.Execute(plan)
		elapsed := time.Since(start)
		if err != nil {
			if isBudgetError(err) {
				return 0, true, nil
			}
			return 0, false, err
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, false, nil
}

func isBudgetError(err error) bool {
	return errors.Is(err, eager.ErrBudgetExceeded)
}

// FormatFigure2 renders the paper-style series: one block per query, one
// row per size, with the speedup column the paper quotes (12×/19×/30×).
func FormatFigure2(results []Figure2Result) string {
	out := "Figure 2 — run times for MODIN and the pandas-profile baseline\n"
	out += fmt.Sprintf("%-12s %10s %14s %14s %9s\n", "query", "rows", "baseline", "modin", "speedup")
	for _, r := range results {
		base := r.Baseline.String()
		speed := fmt.Sprintf("%.2fx", r.Speedup)
		if r.BaselineDNF {
			base, speed = "DNF", "∞"
		}
		out += fmt.Sprintf("%-12s %10d %14s %14s %9s\n", r.Query, r.Rows, base, r.Modin, speed)
	}
	return out
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/modin"
	"repro/internal/partition"
	"repro/internal/schema"
	"repro/internal/session"
	"repro/internal/types"
	"repro/internal/workload"
)

// This file holds the DESIGN.md ablation experiments E8–E10: schema
// induction deferral/caching, metadata-only transpose, and evaluation-mode
// comparisons.

// SchemaInductionResult reports E8: the cost of typing a wide untyped frame
// under three policies.
type SchemaInductionResult struct {
	Rows, Cols int
	// InduceAll types every column eagerly at ingest.
	InduceAll time.Duration
	// DeferThenFilter applies the defer-induce rewrite: filter first,
	// induce the survivors.
	DeferThenFilter time.Duration
	// InduceThenFilter induces everything, then filters.
	InduceThenFilter time.Duration
	// CachedReuse re-induces via the shared cache (second touch ~free).
	CachedReuse time.Duration
}

// RunSchemaInduction measures E8 over a rows×cols untyped frame with a
// selective filter.
func RunSchemaInduction(rows, cols int) (SchemaInductionResult, error) {
	res := SchemaInductionResult{Rows: rows, Cols: cols}
	engine := eager.New()
	pred := expr.Predicate(func(r expr.Row) bool { return r.Position()%10 == 0 })

	fresh := func() *core.DataFrame { return workload.WideUntyped(rows, cols, 99) }

	start := time.Now()
	algebra.InduceFrame(fresh())
	res.InduceAll = time.Since(start)

	// induce → filter (the unoptimized plan).
	plan := &algebra.Induce{Input: &algebra.Source{DF: fresh()}}
	full := &algebra.Selection{Input: plan, Pred: pred, Desc: "1-in-10"}
	start = time.Now()
	if _, err := engine.Execute(full); err != nil {
		return res, err
	}
	res.InduceThenFilter = time.Since(start)

	// filter → induce (the defer-induce rewrite).
	deferred := &algebra.Induce{Input: &algebra.Selection{
		Input: &algebra.Source{DF: fresh()}, Pred: pred, Desc: "1-in-10",
	}}
	start = time.Now()
	if _, err := engine.Execute(deferred); err != nil {
		return res, err
	}
	res.DeferThenFilter = time.Since(start)

	// cached reuse: same column vectors induced twice through one cache.
	cache := schema.NewCache()
	shared := fresh().WithCache(cache)
	algebra.InduceFrame(shared)
	start = time.Now()
	algebra.InduceFrame(shared.SliceRows(0, rows).WithCache(cache))
	res.CachedReuse = time.Since(start)
	return res, nil
}

// TransposeAblation reports E9: physical single-threaded transpose vs
// MODIN's parallel block transpose at one size.
type TransposeAblation struct {
	Rows, Cols int
	Physical   time.Duration
	Blocked    time.Duration
	Speedup    float64
}

// RunTransposeAblation measures E9.
func RunTransposeAblation(rows, cols, bands int) (TransposeAblation, error) {
	res := TransposeAblation{Rows: rows, Cols: cols}
	df := workload.Matrix(rows, cols, 5)
	plan := &algebra.Transpose{Input: &algebra.Source{DF: df}}

	var err error
	res.Physical, _, err = timeEngine(eager.New(), plan, 3)
	if err != nil {
		return res, err
	}

	pool := exec.Default
	start := time.Now()
	for rep := 0; rep < 3; rep++ {
		pf := partition.New(df, partition.Blocks, bands)
		if _, err := pf.Transpose(pool, nil); err != nil {
			return res, err
		}
	}
	res.Blocked = time.Since(start) / 3
	if res.Blocked > 0 {
		res.Speedup = float64(res.Physical) / float64(res.Blocked)
	}
	return res, nil
}

// EvaluationModesResult reports E10: time-to-first-inspection and
// time-to-final-result for the three Section 6 evaluation modes over the
// same scripted session.
type EvaluationModesResult struct {
	Mode            session.Mode
	TimeToFirstView time.Duration
	TimeToResult    time.Duration
	ReuseHits       int64
}

// RunEvaluationModes scripts the same interactive session under each mode:
// bind → filter → (think) → head(5) → groupby → collect. Think time is
// simulated work the user would do between statements.
func RunEvaluationModes(rows int, thinkTime time.Duration) ([]EvaluationModesResult, error) {
	df := algebra.InduceFrame(workload.Taxi(workload.DefaultTaxiOptions(rows)))
	var out []EvaluationModesResult
	for _, mode := range []session.Mode{session.Eager, session.Lazy, session.Opportunistic} {
		s := session.New(modin.New(), mode, nil)
		start := time.Now()
		base := s.Bind("taxi", df)
		filtered := base.Apply("paid", func(in algebra.Node) algebra.Node {
			return &algebra.Selection{
				Input: in,
				Pred:  expr.ColEquals("payment_type", types.CategoryValue("card")),
				Desc:  "payment_type == card",
			}
		})
		time.Sleep(thinkTime) // the user thinks; opportunistic mode computes
		if _, err := filtered.Head(5); err != nil {
			return nil, err
		}
		firstView := time.Since(start)

		grouped := filtered.Apply("by-vendor", func(in algebra.Node) algebra.Node {
			return &algebra.GroupBy{Input: in, Spec: expr.GroupBySpec{
				Keys: []string{"vendor_id"},
				Aggs: []expr.AggSpec{{Col: "total_amount", Agg: expr.AggMean, As: "avg_total"}},
			}}
		})
		if _, err := grouped.Collect(); err != nil {
			return nil, err
		}
		out = append(out, EvaluationModesResult{
			Mode:            mode,
			TimeToFirstView: firstView,
			TimeToResult:    time.Since(start),
			ReuseHits:       s.Stats.ReuseHits.Load(),
		})
	}
	return out, nil
}

// FormatAblations renders E8–E10 results.
func FormatAblations(si SchemaInductionResult, ta TransposeAblation, em []EvaluationModesResult) string {
	out := "E8 — schema induction placement\n"
	out += fmt.Sprintf("  induce-all (%dx%d):      %v\n", si.Rows, si.Cols, si.InduceAll)
	out += fmt.Sprintf("  induce→filter:           %v\n", si.InduceThenFilter)
	out += fmt.Sprintf("  filter→induce (defer):   %v\n", si.DeferThenFilter)
	out += fmt.Sprintf("  cached re-induction:     %v\n", si.CachedReuse)
	out += "E9 — transpose strategy\n"
	out += fmt.Sprintf("  physical single-thread (%dx%d): %v\n", ta.Rows, ta.Cols, ta.Physical)
	out += fmt.Sprintf("  parallel block transpose:       %v (%.2fx)\n", ta.Blocked, ta.Speedup)
	out += "E10 — evaluation modes (same scripted session)\n"
	for _, r := range em {
		out += fmt.Sprintf("  %-14s first-view=%v result=%v reuse-hits=%d\n",
			r.Mode, r.TimeToFirstView, r.TimeToResult, r.ReuseHits)
	}
	return out
}

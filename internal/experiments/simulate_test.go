package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestMakespanProperties(t *testing.T) {
	tasks := []time.Duration{5, 3, 3, 2, 2, 1}
	if got := makespan(tasks, 1); got != 16 {
		t.Errorf("1-worker makespan = %v, want sum 16", got)
	}
	// More workers never slows completion.
	prev := makespan(tasks, 1)
	for w := 2; w <= 8; w++ {
		cur := makespan(tasks, w)
		if cur > prev {
			t.Errorf("makespan increased from %v to %v at w=%d", prev, cur, w)
		}
		prev = cur
	}
	// Never faster than the longest task.
	if makespan(tasks, 100) < 5 {
		t.Error("makespan below the longest task")
	}
	// Defensive: w<1 clamps.
	if makespan(tasks, 0) != 16 {
		t.Error("w=0 should clamp to one worker")
	}
}

func TestSimulatedFigure2Shape(t *testing.T) {
	cfg := SimConfig{Rows: 4000, Bands: 8, WorkerCounts: []int{1, 4, 16}}
	results, err := RunSimulatedFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("queries = %d", len(results))
	}
	for _, r := range results {
		if r.TaskCount == 0 {
			t.Errorf("%s: no tasks measured", r.Query)
		}
		// Projection shrinks monotonically with workers.
		if r.ProjectedAt[4] > r.ProjectedAt[1] || r.ProjectedAt[16] > r.ProjectedAt[4] {
			t.Errorf("%s: projections not monotone: %v", r.Query, r.ProjectedAt)
		}
		// With 8+ independent tasks, 4 workers give a real speedup over 1.
		if r.Query != QueryGroupBy1 && r.SpeedupAt[4] < 1.5*r.SpeedupAt[1] {
			t.Errorf("%s: W=4 speedup %v vs W=1 %v — decomposition not parallelizable",
				r.Query, r.SpeedupAt[4], r.SpeedupAt[1])
		}
	}
	text := FormatSimulated(results, cfg.WorkerCounts)
	if !strings.Contains(text, "W=16") || !strings.Contains(text, "speedups:") {
		t.Errorf("format wrong:\n%s", text)
	}
}

func TestSimulatedDNFStillProjected(t *testing.T) {
	cfg := SimConfig{
		Rows:                    2000,
		Bands:                   4,
		WorkerCounts:            []int{1, 4},
		BaselineTransposeBudget: 100, // baseline transpose DNFs
	}
	results, err := RunSimulatedFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Query == QueryTranspose {
			if !r.BaselineDNF {
				t.Error("baseline should DNF under budget")
			}
			if r.ProjectedAt[4] == 0 {
				t.Error("modin projection must still complete")
			}
		}
	}
	text := FormatSimulated(results, cfg.WorkerCounts)
	if !strings.Contains(text, "DNF") {
		t.Errorf("format should show DNF:\n%s", text)
	}
}

package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/expr"
	"repro/internal/partition"
	"repro/internal/workload"
)

// The paper's Figure 2 numbers come from a 128-core EC2 node; this
// reproduction may run on far fewer cores (possibly one), where physical
// parallel speedup cannot manifest. Per the substitution rule, this file
// adds a *scheduling simulator*: the MODIN engine's real per-partition
// tasks are executed and timed individually, and the N-worker completion
// time is computed by LPT list scheduling over the measured durations plus
// the measured sequential merge cost. The code path exercised is exactly
// the parallel engine's work decomposition; only the wall-clock overlap is
// simulated.

// SimResult projects one query's speedup at several worker counts.
type SimResult struct {
	Query       Figure2Query
	Rows        int
	Baseline    time.Duration
	TaskCount   int
	SerialTasks time.Duration // Σ task durations (1-worker makespan)
	MergeCost   time.Duration // sequential combine cost
	ProjectedAt map[int]time.Duration
	SpeedupAt   map[int]float64
	BaselineDNF bool
}

// makespan computes the LPT (longest processing time first) list-scheduling
// completion time of the tasks on w workers.
func makespan(tasks []time.Duration, w int) time.Duration {
	if w < 1 {
		w = 1
	}
	sorted := append([]time.Duration(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	loads := make([]time.Duration, w)
	for _, t := range sorted {
		// Assign to the least-loaded worker.
		min := 0
		for i := 1; i < w; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += t
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// measureTasks decomposes the query the way the MODIN engine does and times
// every partition task sequentially, returning the task durations and the
// sequential merge cost.
func measureTasks(q Figure2Query, df *core.DataFrame, bands int) (tasks []time.Duration, merge time.Duration, err error) {
	pf := partition.New(df, partition.Rows, bands)
	switch q {
	case QueryMap:
		blocks := partition.New(df, partition.Blocks, bands)
		for r := 0; r < blocks.RowBands(); r++ {
			for c := 0; c < blocks.ColBands(); c++ {
				start := time.Now()
				if _, err := algebra.MapFrame(blocks.Block(r, c), algebra.IsNullFn()); err != nil {
					return nil, 0, err
				}
				tasks = append(tasks, time.Since(start))
			}
		}
		return tasks, 0, nil

	case QueryGroupByN, QueryGroupBy1:
		spec := expr.GroupBySpec{
			Keys: []string{"passenger_count"},
			Aggs: []expr.AggSpec{{Agg: expr.AggSize, As: "trips"}},
		}
		if q == QueryGroupBy1 {
			spec = expr.GroupBySpec{
				Aggs: []expr.AggSpec{{Col: "passenger_count", Agg: expr.AggCount, As: "non_null_rows"}},
			}
		}
		partials := make([]*algebra.GroupPartial, 0, pf.RowBands())
		for r := 0; r < pf.RowBands(); r++ {
			band, err := pf.RowBand(r)
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			g := algebra.NewGroupPartial(spec)
			if err := g.AddFrame(band); err != nil {
				return nil, 0, err
			}
			tasks = append(tasks, time.Since(start))
			partials = append(partials, g)
		}
		start := time.Now()
		merged := partials[0]
		for _, p := range partials[1:] {
			merged.Merge(p)
		}
		if _, err := merged.Finalize(); err != nil {
			return nil, 0, err
		}
		return tasks, time.Since(start), nil

	case QueryTranspose:
		blocks := partition.New(df, partition.Blocks, bands)
		for r := 0; r < blocks.RowBands(); r++ {
			for c := 0; c < blocks.ColBands(); c++ {
				start := time.Now()
				t, err := algebra.TransposeFrame(blocks.Block(r, c), nil)
				if err != nil {
					return nil, 0, err
				}
				if _, err := algebra.MapFrame(t, algebra.IsNullFn()); err != nil {
					return nil, 0, err
				}
				tasks = append(tasks, time.Since(start))
			}
		}
		return tasks, 0, nil
	}
	return nil, 0, fmt.Errorf("experiments: unknown query %q", q)
}

// SimConfig parameterizes the projection.
type SimConfig struct {
	Rows                    int
	Bands                   int
	WorkerCounts            []int
	BaselineTransposeBudget int
}

// DefaultSimConfig projects at the paper's scale points.
func DefaultSimConfig(rows int) SimConfig {
	return SimConfig{
		Rows:                    rows,
		Bands:                   32,
		WorkerCounts:            []int{1, 4, 16, 128},
		BaselineTransposeBudget: 0,
	}
}

// RunSimulatedFigure2 measures the baseline and the decomposed MODIN tasks,
// then projects multi-worker completion times.
func RunSimulatedFigure2(cfg SimConfig) ([]SimResult, error) {
	df := algebra.InduceFrame(workload.Taxi(workload.DefaultTaxiOptions(cfg.Rows)))
	var out []SimResult
	for _, q := range Figure2Queries {
		plan, err := Figure2Plan(q, df)
		if err != nil {
			return nil, err
		}
		res := SimResult{
			Query:       q,
			Rows:        cfg.Rows,
			ProjectedAt: make(map[int]time.Duration),
			SpeedupAt:   make(map[int]float64),
		}
		res.Baseline, res.BaselineDNF, err = timeEngine(
			&eager.Engine{TransposeCellBudget: cfg.BaselineTransposeBudget}, plan, 1)
		if err != nil {
			return nil, err
		}
		tasks, merge, err := measureTasks(q, df, cfg.Bands)
		if err != nil {
			return nil, err
		}
		res.TaskCount = len(tasks)
		res.MergeCost = merge
		for _, t := range tasks {
			res.SerialTasks += t
		}
		for _, w := range cfg.WorkerCounts {
			proj := makespan(tasks, w) + merge
			res.ProjectedAt[w] = proj
			if !res.BaselineDNF && proj > 0 {
				res.SpeedupAt[w] = float64(res.Baseline) / float64(proj)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatSimulated renders the projection table.
func FormatSimulated(results []SimResult, workers []int) string {
	out := "Figure 2 (projected) — measured per-partition tasks scheduled on W simulated workers\n"
	out += fmt.Sprintf("%-12s %10s %12s %6s", "query", "rows", "baseline", "tasks")
	for _, w := range workers {
		out += fmt.Sprintf(" %11s", fmt.Sprintf("W=%d", w))
	}
	out += "\n"
	for _, r := range results {
		base := r.Baseline.String()
		if r.BaselineDNF {
			base = "DNF"
		}
		out += fmt.Sprintf("%-12s %10d %12s %6d", r.Query, r.Rows, base, r.TaskCount)
		for _, w := range workers {
			out += fmt.Sprintf(" %11s", r.ProjectedAt[w].Round(time.Microsecond))
		}
		out += "\n      speedups:"
		for _, w := range workers {
			out += fmt.Sprintf("  W=%d→%.1fx", w, r.SpeedupAt[w])
		}
		out += "\n"
	}
	return out
}

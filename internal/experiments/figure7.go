package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/notebooks"
	"repro/internal/pycalls"
)

// Figure7Row is one function's usage statistics over the corpus.
type Figure7Row struct {
	Name  string
	Total int
	Files int
}

// Figure7Result is the full usage study of Section 4.6.
type Figure7Result struct {
	Notebooks      int
	PandasFraction float64
	ByTotal        []Figure7Row // descending total occurrences
	ByFiles        []Figure7Row // descending per-file counts
	TopCoOccur     []string     // most common same-line pairs, "a+b (n)"
}

// RunFigure7 regenerates the usage statistics: synthesize the corpus,
// extract method invocations, and rank them — the paper's
// nbconvert→2to3→ast pipeline with our generator and extractor substrates.
func RunFigure7(corpusSize int) Figure7Result {
	nbs := notebooks.Generate(notebooks.DefaultOptions(corpusSize))
	counts := pycalls.NewCounts()
	vocab := pycalls.PandasVocabulary()
	pandasCount := 0
	for _, nb := range nbs {
		if nb.UsesPandas {
			pandasCount++
		}
		counts.AddFile(pycalls.Extract(nb.Source), vocab)
	}

	res := Figure7Result{
		Notebooks:      corpusSize,
		PandasFraction: float64(pandasCount) / float64(corpusSize),
	}
	for name, n := range counts.Total {
		res.ByTotal = append(res.ByTotal, Figure7Row{Name: name, Total: n, Files: counts.Files[name]})
	}
	sort.Slice(res.ByTotal, func(i, j int) bool { return res.ByTotal[i].Total > res.ByTotal[j].Total })
	res.ByFiles = append([]Figure7Row(nil), res.ByTotal...)
	sort.Slice(res.ByFiles, func(i, j int) bool { return res.ByFiles[i].Files > res.ByFiles[j].Files })

	type pair struct {
		key string
		n   int
	}
	var pairs []pair
	for k, n := range counts.CoOccur {
		pairs = append(pairs, pair{k, n})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].n > pairs[j].n })
	for i := 0; i < len(pairs) && i < 10; i++ {
		res.TopCoOccur = append(res.TopCoOccur, fmt.Sprintf("%s (%d)", pairs[i].key, pairs[i].n))
	}
	return res
}

// FormatFigure7 renders the ranked usage table, Figure 7 style.
func FormatFigure7(res Figure7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — pandas usage over %d synthesized notebooks (%.0f%% use pandas)\n",
		res.Notebooks, res.PandasFraction*100)
	fmt.Fprintf(&b, "%-14s %10s %10s\n", "function", "total", "files")
	for _, r := range res.ByTotal {
		fmt.Fprintf(&b, "%-14s %10d %10d\n", r.Name, r.Total, r.Files)
	}
	b.WriteString("top same-line co-occurrences: ")
	b.WriteString(strings.Join(res.TopCoOccur, ", "))
	b.WriteByte('\n')
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
)

// Table 3 of the paper compares dataframe and dataframe-like systems on ten
// features. For our two engines the entries are *probed*: each feature is
// verified by actually executing the operator and checking its defining
// property. The published column values for pandas, R, Spark and Dask are
// reproduced as reference (we cannot execute those systems offline).

// Table3Features lists the feature rows in the paper's order.
var Table3Features = []string{
	"Ordered model",
	"Eager execution",
	"Row/Col Equivalency",
	"Lazy Schema",
	"Relational Operators",
	"MAP",
	"WINDOW",
	"TRANSPOSE",
	"TOLABELS",
	"FROMLABELS",
}

// table3Reference is the published matrix (Table 3): feature → system →
// supported. Footnoted partial support is recorded as true with the paper's
// caveat living in the rendering.
var table3Reference = map[string]map[string]bool{
	"Ordered model":        {"pandas": true, "R": true, "Spark": false, "Dask": true},
	"Eager execution":      {"pandas": true, "R": true, "Spark": false, "Dask": false},
	"Row/Col Equivalency":  {"pandas": true, "R": true, "Spark": false, "Dask": false},
	"Lazy Schema":          {"pandas": true, "R": true, "Spark": false, "Dask": true},
	"Relational Operators": {"pandas": true, "R": true, "Spark": true, "Dask": true},
	"MAP":                  {"pandas": true, "R": true, "Spark": true, "Dask": true},
	"WINDOW":               {"pandas": true, "R": true, "Spark": true, "Dask": true},
	"TRANSPOSE":            {"pandas": true, "R": true, "Spark": false, "Dask": false},
	"TOLABELS":             {"pandas": true, "R": true, "Spark": false, "Dask": true},
	"FROMLABELS":           {"pandas": true, "R": true, "Spark": false, "Dask": false},
}

// probe executes one capability check against the engine, returning whether
// the defining property held.
func probe(e algebra.Engine, feature string) bool {
	df := core.MustFromRecords([]string{"k", "v"}, [][]any{
		{"b", 1}, {"a", 2}, {"b", 3},
	})
	untyped, err := core.ReadCSVString("x,y\n1,p\n2,q\n", core.DefaultCSVOptions())
	if err != nil {
		return false
	}
	src := &algebra.Source{DF: df}

	switch feature {
	case "Ordered model":
		// UNION concatenates in order; row order equals input order.
		out, err := e.Execute(&algebra.Union{Left: src, Right: src})
		if err != nil || out.NRows() != 6 {
			return false
		}
		return out.Value(0, 0).Str() == "b" && out.Value(3, 0).Str() == "b"

	case "Eager execution":
		// Engine.Execute materializes fully: the result is a concrete
		// frame, usable without further evaluation steps.
		out, err := e.Execute(src)
		return err == nil && out.NRows() == 3

	case "Row/Col Equivalency":
		// Transpose twice recovers the frame: rows and columns are
		// interchangeable.
		out, err := e.Execute(&algebra.Transpose{Input: &algebra.Transpose{Input: src}})
		return err == nil && out.Equal(df)

	case "Lazy Schema":
		// Untyped ingest stays untyped until operated on, then induces.
		if untyped.DeclaredDomain(0) != types.Unspecified {
			return false
		}
		out, err := e.Execute(&algebra.Induce{Input: &algebra.Source{DF: untyped}})
		return err == nil && out.DeclaredDomain(0) == types.Int

	case "Relational Operators":
		out, err := e.Execute(&algebra.Join{
			Left: &algebra.Selection{Input: src, Pred: expr.ColNotNull("k"), Desc: "k notnull"},
			Right: &algebra.Source{DF: core.MustFromRecords(
				[]string{"k", "w"}, [][]any{{"a", 10}, {"b", 20}})},
			Kind: expr.JoinInner,
			On:   []string{"k"},
		})
		return err == nil && out.NRows() == 3

	case "MAP":
		out, err := e.Execute(&algebra.Map{Input: src, Fn: algebra.IsNullFn()})
		return err == nil && !out.Value(0, 0).Bool()

	case "WINDOW":
		out, err := e.Execute(&algebra.Window{Input: src, Spec: expr.WindowSpec{
			Kind: expr.WindowShift, Offset: 1, Cols: []string{"v"},
		}})
		return err == nil && out.Value(1, 1).Int() == 1

	case "TRANSPOSE":
		out, err := e.Execute(&algebra.Transpose{Input: src})
		return err == nil && out.NRows() == 2 && out.NCols() == 3

	case "TOLABELS":
		out, err := e.Execute(&algebra.ToLabels{Input: src, Col: "k"})
		return err == nil && out.NCols() == 1 && out.RowLabels().Value(0).Str() == "b"

	case "FROMLABELS":
		out, err := e.Execute(&algebra.FromLabels{Input: src, Label: "idx"})
		return err == nil && out.NCols() == 3 && out.ColName(0) == "idx"
	}
	return false
}

// Table3Result is the probed + reference matrix.
type Table3Result struct {
	// Systems is the column order.
	Systems []string
	// Support maps feature → system → supported.
	Support map[string]map[string]bool
}

// RunTable3 probes the given engines (columns named by engine) and attaches
// the published reference columns.
func RunTable3(engines ...algebra.Engine) Table3Result {
	res := Table3Result{Support: make(map[string]map[string]bool)}
	for _, e := range engines {
		res.Systems = append(res.Systems, e.Name())
	}
	res.Systems = append(res.Systems, "pandas", "R", "Spark", "Dask")
	for _, f := range Table3Features {
		row := make(map[string]bool)
		for _, e := range engines {
			row[e.Name()] = probe(e, f)
		}
		for sys, v := range table3Reference[f] {
			row[sys] = v
		}
		res.Support[f] = row
	}
	return res
}

// FormatTable3 renders the matrix with ✓/– marks.
func FormatTable3(res Table3Result) string {
	var b strings.Builder
	b.WriteString("Table 3 — feature matrix (our engines probed; pandas/R/Spark/Dask from the paper)\n")
	fmt.Fprintf(&b, "%-22s", "feature")
	for _, s := range res.Systems {
		fmt.Fprintf(&b, " %-16s", s)
	}
	b.WriteByte('\n')
	for _, f := range Table3Features {
		fmt.Fprintf(&b, "%-22s", f)
		for _, s := range res.Systems {
			mark := "–"
			if res.Support[f][s] {
				mark = "✓"
			}
			fmt.Fprintf(&b, " %-16s", mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Package stats collects the lightweight per-column statistics behind the
// physical planner's decisions: row count, null count, min/max, and an HLL
// distinct-value sketch. Everything is computed bulk-wise from the typed
// storage in internal/vector (one hash pass per column, no boxed values),
// and every piece is mergeable, so partitions can summarize independently
// and exchanges combine the results — the same decomposition the paper uses
// for decomposable aggregates (Section 5.2.3 points at exactly this
// size-estimation problem for the planner).
package stats

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/types"
	"repro/internal/vector"
)

// DefaultPrecision is the HLL precision for planner sketches: 4 KiB of
// registers per column, ~1.6% standard error.
const DefaultPrecision uint8 = 12

// hashSeed is fixed so sketches built by different partitions (or different
// processes) observe identical hashes and merge soundly.
const hashSeed uint64 = 0x5ad1f1c3a94b62e7

// Col summarizes one column (or one composite key): value counts, the
// observed value range, and a distinct-count sketch.
type Col struct {
	Count int64 // rows observed, nulls included
	Nulls int64
	Min   types.Value // null when no non-null value was observed
	Max   types.Value
	NDV   *sketch.HLL // nil when sketching was skipped
}

// DistinctEstimate returns the sketched distinct-value estimate, clamped to
// the non-null row count (an HLL can overshoot small exact counts). Zero
// when no sketch was collected.
func (c *Col) DistinctEstimate() float64 {
	if c == nil || c.NDV == nil {
		return 0
	}
	e := c.NDV.Estimate()
	if nonNull := float64(c.Count - c.Nulls); e > nonNull {
		e = nonNull
	}
	return e
}

// Clone returns an independent copy (Merge mutates the sketch in place).
func (c *Col) Clone() *Col {
	cp := *c
	if c.NDV != nil {
		cp.NDV = c.NDV.Clone()
	}
	return &cp
}

// Merge folds another summary of the same column into c: counts add, the
// range widens, sketches take the register-wise union.
func (c *Col) Merge(o *Col) error {
	if o == nil {
		return nil
	}
	c.Count += o.Count
	c.Nulls += o.Nulls
	if c.Min.IsNull() || (!o.Min.IsNull() && o.Min.Less(c.Min)) {
		c.Min = o.Min
	}
	if c.Max.IsNull() || (!o.Max.IsNull() && c.Max.Less(o.Max)) {
		c.Max = o.Max
	}
	switch {
	case c.NDV == nil:
		c.NDV = o.NDV
	case o.NDV != nil:
		if err := c.NDV.Merge(o.NDV); err != nil {
			return err
		}
	}
	return nil
}

// Table carries the statistics of one frame: total rows plus per-column (and
// per-composite-key) summaries, keyed by KeyName.
type Table struct {
	Rows int64
	Cols map[string]*Col
}

// New returns an empty table for a frame with the given row count.
func New(rows int64) *Table {
	return &Table{Rows: rows, Cols: make(map[string]*Col)}
}

// Col returns the summary stored under the given columns' key name, or nil.
func (t *Table) Col(cols ...string) *Col {
	if t == nil {
		return nil
	}
	return t.Cols[KeyName(cols)]
}

// Clone returns an independent copy of the table.
func (t *Table) Clone() *Table {
	out := New(t.Rows)
	for name, c := range t.Cols {
		out.Cols[name] = c.Clone()
	}
	return out
}

// Merge folds another frame's table into t, as when two partitions of the
// same relation meet at an exchange: rows add, matching column summaries
// merge, and summaries present on only one side are dropped (a partial
// summary would under-count the union).
func (t *Table) Merge(o *Table) error {
	if o == nil {
		return nil
	}
	t.Rows += o.Rows
	for name, c := range t.Cols {
		oc, ok := o.Cols[name]
		if !ok {
			delete(t.Cols, name)
			continue
		}
		if err := c.Merge(oc); err != nil {
			return err
		}
	}
	return nil
}

// KeyName is the map key for a column set: the single column's name, or the
// \x1f-joined names of a composite key (unit separator cannot collide with a
// real label in practice).
func KeyName(cols []string) string {
	if len(cols) == 1 {
		return cols[0]
	}
	return strings.Join(cols, "\x1f")
}

// CollectColumn summarizes one column in a single typed pass: the hash
// kernel feeds the sketch directly (AddHash), min/max come from the bulk
// MinMax kernel, and null counting reuses the vector mask scan.
func CollectColumn(v vector.Vector, precision uint8) (*Col, error) {
	h, err := sketch.New(precision)
	if err != nil {
		return nil, err
	}
	n := v.Len()
	c := &Col{Count: int64(n), Nulls: int64(vector.NullCount(v)), NDV: h}
	c.Min, c.Max = vector.MinMax(v)
	hashes := make([]uint64, n)
	vector.Hash(v, hashSeed, hashes)
	for i, x := range hashes {
		if v.IsNull(i) {
			continue
		}
		h.AddHash(x)
	}
	return c, nil
}

// Collect summarizes the named columns of df (all columns when cols is nil)
// into a fresh table.
func Collect(df *core.DataFrame, cols []string, precision uint8) (*Table, error) {
	if cols == nil {
		cols = df.ColNames()
	}
	t := New(int64(df.NRows()))
	for _, name := range cols {
		j := df.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("stats: unknown column %q", name)
		}
		c, err := CollectColumn(df.TypedCol(j), precision)
		if err != nil {
			return nil, err
		}
		t.Cols[name] = c
	}
	return t, nil
}

// CollectKey summarizes a composite key: the distinct count of the row
// tuples over the given columns (the quantity a groupby output size or a
// join key cardinality needs), stored under KeyName(cols). Min/Max are only
// kept for single-column keys; a composite range has no single-column
// ordering.
func CollectKey(df *core.DataFrame, cols []string, precision uint8) (*Col, error) {
	if len(cols) == 1 {
		j := df.ColIndex(cols[0])
		if j < 0 {
			return nil, fmt.Errorf("stats: unknown column %q", cols[0])
		}
		return CollectColumn(df.TypedCol(j), precision)
	}
	h, err := sketch.New(precision)
	if err != nil {
		return nil, err
	}
	vs := make([]vector.Vector, len(cols))
	for k, name := range cols {
		j := df.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("stats: unknown column %q", name)
		}
		vs[k] = df.TypedCol(j)
	}
	n := df.NRows()
	hashes := make([]uint64, n)
	vector.HashRows(vs, hashSeed, hashes)
	c := &Col{Count: int64(n), NDV: h}
	for i, x := range hashes {
		allNull := true
		for _, v := range vs {
			if !v.IsNull(i) {
				allNull = false
				break
			}
		}
		if allNull {
			c.Nulls++
		}
		h.AddHash(x)
	}
	return c, nil
}

package stats

import (
	"testing"

	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/vector"
)

func intFrame(t *testing.T, rows, distinct int) *core.DataFrame {
	t.Helper()
	data := make([]int64, rows)
	var nulls []bool
	for i := range data {
		data[i] = int64(i % distinct)
		if i%29 == 0 {
			if nulls == nil {
				nulls = make([]bool, rows)
			}
			nulls[i] = true
		}
	}
	df, err := core.Build(
		[]vector.Vector{vector.NewInt(data, nulls), vector.NewFloat(make([]float64, rows), nil)},
		vector.Range(0, rows),
		[]types.Value{types.String("k"), types.String("v")},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func TestCollectColumn(t *testing.T) {
	rows, distinct := 4000, 900
	df := intFrame(t, rows, distinct)
	c, err := CollectColumn(df.TypedCol(0), DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count != int64(rows) {
		t.Errorf("count = %d", c.Count)
	}
	wantNulls := int64((rows + 28) / 29)
	if c.Nulls != wantNulls {
		t.Errorf("nulls = %d, want %d", c.Nulls, wantNulls)
	}
	if c.Min.Int() != 0 || c.Max.Int() != int64(distinct-1) {
		t.Errorf("range = [%v, %v]", c.Min, c.Max)
	}
	// Nulled rows remove a few distinct values' only occurrence? No — every
	// key repeats, so the distinct count stays `distinct`. ~1.6% HLL error
	// at precision 12; allow 5%.
	if e := c.DistinctEstimate(); e < 0.95*float64(distinct) || e > 1.05*float64(distinct) {
		t.Errorf("ndv = %v, want ≈%d", e, distinct)
	}
}

// TestMergeMatchesWhole requires partition-wise collection plus Merge to
// agree with whole-frame collection: same counts, same range, and a sketch
// estimate within HLL error of the true union.
func TestMergeMatchesWhole(t *testing.T) {
	rows, distinct := 6000, 1100
	df := intFrame(t, rows, distinct)
	whole, err := CollectColumn(df.TypedCol(0), DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	a, err := CollectColumn(df.TypedCol(0).Slice(0, rows/3), DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectColumn(df.TypedCol(0).Slice(rows/3, rows), DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != whole.Count || a.Nulls != whole.Nulls {
		t.Errorf("merged counts %d/%d, whole %d/%d", a.Count, a.Nulls, whole.Count, whole.Nulls)
	}
	if !a.Min.Equal(whole.Min) || !a.Max.Equal(whole.Max) {
		t.Errorf("merged range [%v,%v], whole [%v,%v]", a.Min, a.Max, whole.Min, whole.Max)
	}
	// Same fixed seed → identical hashes → the merged registers are the
	// register-wise max, and the estimate matches the whole-frame sketch
	// exactly.
	if a.DistinctEstimate() != whole.DistinctEstimate() {
		t.Errorf("merged ndv %v != whole ndv %v", a.DistinctEstimate(), whole.DistinctEstimate())
	}
}

func TestTableMergeDropsOneSided(t *testing.T) {
	df := intFrame(t, 2000, 50)
	ta, err := Collect(df, []string{"k", "v"}, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Collect(df, []string{"k"}, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Merge(tb); err != nil {
		t.Fatal(err)
	}
	if ta.Rows != 4000 {
		t.Errorf("rows = %d", ta.Rows)
	}
	if ta.Col("k") == nil {
		t.Error("shared column must survive the merge")
	}
	if ta.Col("v") != nil {
		t.Error("one-sided column must be dropped (it would under-count the union)")
	}
}

// TestCloneIsIndependent guards against register aliasing: merging into a
// clone must not disturb the original sketch.
func TestCloneIsIndependent(t *testing.T) {
	df := intFrame(t, 3000, 400)
	orig, err := Collect(df, []string{"k"}, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	before := orig.Col("k").DistinctEstimate()
	cl := orig.Clone()
	other, err := Collect(intFrame(t, 3000, 2900), []string{"k"}, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Merge(other); err != nil {
		t.Fatal(err)
	}
	if got := orig.Col("k").DistinctEstimate(); got != before {
		t.Errorf("merge into clone mutated the original: %v -> %v", before, got)
	}
	if cl.Col("k").DistinctEstimate() <= before {
		t.Error("clone must reflect the merged union")
	}
}

func TestCollectKeyComposite(t *testing.T) {
	rows := 3000
	a := make([]int64, rows)
	b := make([]int64, rows)
	for i := range a {
		a[i] = int64(i % 10)
		b[i] = int64(i % 70) // lcm(10,70)=70 → 70 distinct pairs
	}
	df, err := core.Build(
		[]vector.Vector{vector.NewInt(a, nil), vector.NewInt(b, nil)},
		vector.Range(0, rows),
		[]types.Value{types.String("a"), types.String("b")},
		nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CollectKey(df, []string{"a", "b"}, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	if e := c.DistinctEstimate(); e < 60 || e > 80 {
		t.Errorf("composite ndv = %v, want ≈70", e)
	}
	if KeyName([]string{"a", "b"}) == KeyName([]string{"ab"}) {
		t.Error("composite key names must not collide with single columns")
	}
}

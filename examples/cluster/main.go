// The cluster example runs one query on two backends and shows they are
// the same query: an in-process MODIN engine, and a distributed cluster of
// two workers behind cluster.Scheduler — the df code is identical, only
// the engine binding changes.
//
// The workers here run in-process (cluster.StartInProcess) so the example
// is self-contained; the same Scheduler drives external processes via
// cluster.Connect / `go run ./cmd/dfworker`, and the df layer picks the
// backend from DF_CLUSTER_WORKERS / DF_CLUSTER_ADDRS without any code
// change at all.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/df"
	"repro/internal/cluster"
)

func main() {
	// A CSV big enough to split into several scan bands per worker.
	var b strings.Builder
	b.WriteString("city,rides,fare\n")
	cities := []string{"oslo", "bergen", "tromso", "stavanger", "trondheim"}
	for i := 0; i < 50000; i++ {
		fmt.Fprintf(&b, "%s,%d,%d.%02d\n", cities[i%len(cities)], i%23, 5+i%40, i%100)
	}
	csv := b.String()

	// One shuffle per query ships; the group order is first-appearance,
	// deterministic on both backends. (A GroupBy *and* a Sort would be two
	// shuffles — that plan falls back to the in-process engine.)
	query := func(q *df.Query) *df.Query {
		return q.WithScanBandRows(4096).
			Where(df.Gt("rides", df.Int(3))).
			GroupBy("city").Mean("fare")
	}

	// Backend 1: the ordinary in-process engine.
	local, err := query(df.ScanCSVString(csv)).Collect()
	if err != nil {
		log.Fatal(err)
	}

	// Backend 2: two workers + a coordinator. StartInProcess trades the
	// process boundary for convenience — blocks still cross the full
	// columnar wire protocol, exactly as they would over TCP.
	sched, workers, err := cluster.StartInProcess(2)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for _, w := range workers {
		fmt.Printf("worker listening on %s\n", w.Addr())
	}

	distributed, err := query(df.ScanCSVString(csv).WithEngine(sched)).Collect()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s\n", distributed)
	if !distributed.Equal(local) {
		log.Fatal("distributed result differs from local — this would be a bug")
	}
	fmt.Println("distributed result is cell-identical to the local engine's")

	// Plans the wire format cannot express fall back transparently: an
	// opaque Go closure cannot be shipped to another process.
	_, err = df.ScanCSVString(csv).WithEngine(sched).
		Filter("rides > 3 (opaque)", func(r df.Row) bool {
			return r.ByName("rides").Int() > 3
		}).
		Count()
	if err != nil {
		log.Fatal(err)
	}

	st := sched.ClusterStats()
	fmt.Printf("\ncluster stats: distributed=%d fallback=%d reruns=%d\n",
		st.Distributed, st.Fallback, st.LocalReruns)
}

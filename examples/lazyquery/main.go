// The lazyquery example walks the Section 4.4 argument end to end: a
// dataframe program written against the lazy Query builder accumulates one
// logical plan, the optimizer rewrites it (map fusion, projection pushdown,
// sorted-groupby), and a single compile→schedule pass executes it — in
// contrast to the eager method chain, which optimizes and materializes at
// every step. The same pipeline is timed both ways, the plan is Explained,
// and the async/fast-path terminal verbs are shown.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/df"
	"repro/internal/algebra"
	"repro/internal/workload"
)

func main() {
	trips := df.FromFrame(algebra.InduceFrame(workload.Taxi(workload.DefaultTaxiOptions(200_000))))

	// The chain builds a plan; nothing executes until Collect.
	q := trips.Lazy().
		Where(df.NotNull("passenger_count")).
		FillNA(df.Float(0)).
		Select("vendor_id", "total_amount", "fare_amount").
		GroupBy("vendor_id").Agg(
		df.AggSpec{Col: "total_amount", Agg: "sum", As: "revenue"},
		df.AggSpec{Col: "fare_amount", Agg: "mean", As: "avg_fare"},
	)

	// Explain shows the pre/post-optimization plan and the fired rules.
	fmt.Println("== plan ==")
	fmt.Print(q.Explain())

	start := time.Now()
	lazy, err := q.Collect()
	if err != nil {
		log.Fatal(err)
	}
	lazyTime := time.Since(start)

	// The same pipeline through the eager methods: one optimize + compile +
	// schedule + gather round trip per call.
	start = time.Now()
	step, err := trips.Where(df.NotNull("passenger_count"))
	if err != nil {
		log.Fatal(err)
	}
	step, err = step.FillNA(df.Float(0))
	if err != nil {
		log.Fatal(err)
	}
	step, err = step.Select("vendor_id", "total_amount", "fare_amount")
	if err != nil {
		log.Fatal(err)
	}
	eager, err := step.GroupBy("vendor_id").Agg(
		df.AggSpec{Col: "total_amount", Agg: "sum", As: "revenue"},
		df.AggSpec{Col: "fare_amount", Agg: "mean", As: "avg_fare"},
	)
	if err != nil {
		log.Fatal(err)
	}
	eagerTime := time.Since(start)

	fmt.Println("== result ==")
	fmt.Println(lazy)
	fmt.Printf("lazy (one collect): %v   eager (four collects): %v   agree: %v\n\n",
		lazyTime, eagerTime, lazy.Equal(eager))

	// CollectAsync: the task DAG is in flight when the call returns.
	fut := trips.Lazy().
		Where(df.Eq("payment_type", df.Str("card"))).
		SortValuesBy([]df.SortKey{{Col: "total_amount", Desc: true}}).
		Head(3).
		CollectAsync()
	fmt.Println("== async top-3 card trips (scheduled, not yet waited) ==")
	top, err := fut.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(top)

	// Count prunes row-count-preserving operators; First collects only the
	// ordered 1-prefix (the sort rewrites to TOPK(1)).
	n, err := trips.Lazy().SortValues("fare_amount").Count()
	if err != nil {
		log.Fatal(err)
	}
	first, err := trips.Lazy().SortValuesBy([]df.SortKey{{Col: "fare_amount", Desc: true}}).First()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count (sort pruned) = %d\n", n)
	fmt.Println("most expensive trip:")
	fmt.Println(first)

	// Builder plans thread through sessions: the opportunistic regime
	// computes this statement in the background during think time.
	s := df.NewSession(df.NewModinEngine(), df.ModeOpportunistic)
	h, err := s.Query("by-vendor", q)
	if err != nil {
		log.Fatal(err)
	}
	s.ThinkTime()
	head, err := h.Head(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("session head after think time:")
	fmt.Println(head)
}

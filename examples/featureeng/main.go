// The featureeng example is the machine-learning preparation workflow the
// paper's introduction motivates: clean a raw dataset, engineer features
// (one-hot encoding, derived columns, normalization), and hand a matrix
// dataframe to the modeling step (here: the covariance analysis of step
// A3). Along the way it shows the arity-estimation problem of Section
// 5.2.3 — get_dummies' output width depends on distinct values, estimated
// here with the HyperLogLog sketch before paying for the encoding.
package main

import (
	"fmt"
	"log"

	"repro/df"
	"repro/internal/workload"
)

func main() {
	frame := workload.Taxi(workload.DefaultTaxiOptions(20_000))
	trips := df.FromFrame(frame)
	fmt.Println("raw trips:")
	fmt.Println(trips.Head(5))
	fmt.Println("dtypes:", trips.Dtypes())

	// Clean: drop rows with any missing value.
	clean, err := trips.DropNA()
	if err != nil {
		log.Fatal(err)
	}
	r, _ := clean.Shape()
	fmt.Printf("after dropna: %d of %d rows\n\n", r, trips.Len())

	// Feature selection: the modeling columns.
	features, err := clean.Select("vendor_id", "payment_type", "passenger_count",
		"trip_distance", "fare_amount", "tip_amount")
	if err != nil {
		log.Fatal(err)
	}

	// Derived feature: tip rate.
	features, err = features.WithColumn("tip_rate", func(row df.Row) df.Value {
		fare := row.ByName("fare_amount").Float()
		if fare == 0 {
			return df.NA()
		}
		return df.Float(row.ByName("tip_amount").Float() / fare)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Before one-hot encoding, estimate the output arity with a sketch:
	// the Section 5.2.3 planning question "how wide will this get?".
	for _, col := range []string{"vendor_id", "payment_type"} {
		est, err := features.EstimateDistinct(col)
		if err != nil {
			log.Fatal(err)
		}
		exact, _ := features.NUnique(col)
		fmt.Printf("distinct %-14s sketch=%.1f exact=%d\n", col, est, exact)
	}

	oneHot, err := features.GetDummies()
	if err != nil {
		log.Fatal(err)
	}
	_, c := oneHot.Shape()
	fmt.Printf("one-hot encoded: %d feature columns\n\n", c)

	// The encoded frame is numeric throughout — a matrix dataframe — so
	// linear-algebra operations apply.
	cov, err := oneHot.Cov()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feature covariance (excerpt):")
	fmt.Println(cov.Head(6))

	// Which features vary most with the tip rate? Rank |cov| against
	// tip_rate using sort + head — fused to TOPK by the optimizer when
	// run through a session, here via NLargest directly.
	tipCov, err := cov.Select("tip_rate")
	if err != nil {
		log.Fatal(err)
	}
	named, err := tipCov.ResetIndex("feature")
	if err != nil {
		log.Fatal(err)
	}
	withAbs, err := named.WithColumn("abs_cov", func(row df.Row) df.Value {
		v := row.ByName("tip_rate").Float()
		if v < 0 {
			v = -v
		}
		return df.Float(v)
	})
	if err != nil {
		log.Fatal(err)
	}
	top, err := withAbs.NLargest(5, "abs_cov")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("features most covarying with tip_rate:")
	fmt.Println(top)
}

// The taxi example runs the Section 3.2 case-study workload as an
// application: the four Figure 2 queries over a synthetic NYC-taxi-profile
// dataset, timed on both engines, printing per-query speedups — a
// miniature, single-size version of what cmd/dfbench sweeps.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/df"
	"repro/internal/workload"
)

func main() {
	rows := flag.Int("rows", 100_000, "trips to generate")
	flag.Parse()

	frame := workload.Taxi(workload.DefaultTaxiOptions(*rows))
	data := df.FromFrame(frame)
	fmt.Printf("synthetic taxi trips: %d rows\n", *rows)
	fmt.Println(data.Head(5))

	baseline := data.WithEngine(df.NewBaselineEngine())
	modin := data.WithEngine(df.NewModinEngine())

	run := func(name string, q func(*df.DataFrame) (*df.DataFrame, error)) {
		start := time.Now()
		if _, err := q(baseline); err != nil {
			log.Fatalf("%s baseline: %v", name, err)
		}
		base := time.Since(start)
		start = time.Now()
		out, err := q(modin)
		if err != nil {
			log.Fatalf("%s modin: %v", name, err)
		}
		par := time.Since(start)
		fmt.Printf("%-12s baseline=%-12v modin=%-12v speedup=%.2fx\n", name, base, par, float64(base)/float64(par))
		if name == "groupby(n)" {
			fmt.Println(out)
		}
	}

	// map: is each value null?
	run("map", func(d *df.DataFrame) (*df.DataFrame, error) { return d.IsNA() })

	// groupby(n): trips per passenger_count.
	run("groupby(n)", func(d *df.DataFrame) (*df.DataFrame, error) {
		return d.GroupBy("passenger_count").Size()
	})

	// groupby(1): count of non-null rows.
	run("groupby(1)", func(d *df.DataFrame) (*df.DataFrame, error) {
		return d.GroupBy().Count("passenger_count")
	})

	// transpose: swap axes and map over the new rows.
	run("transpose", func(d *df.DataFrame) (*df.DataFrame, error) {
		t, err := d.T()
		if err != nil {
			return nil, err
		}
		return t.IsNA()
	})

	// Beyond Figure 2: a realistic analysis — average tip rate by vendor
	// for card payments, via filter + apply + groupby.
	paid, err := modin.Filter("card payments", func(r df.Row) bool {
		return r.ByName("payment_type").Str() == "card"
	})
	if err != nil {
		log.Fatal(err)
	}
	withRate, err := paid.Apply("tip-rate", []string{"vendor_id", "tip_rate"}, func(r df.Row) []df.Value {
		fare := r.ByName("fare_amount").Float()
		tip := r.ByName("tip_amount")
		if tip.IsNull() || fare == 0 {
			return []df.Value{r.ByName("vendor_id"), df.NA()}
		}
		return []df.Value{r.ByName("vendor_id"), df.Float(tip.Float() / fare)}
	})
	if err != nil {
		log.Fatal(err)
	}
	byVendor, err := withRate.GroupBy("vendor_id").Mean("tip_rate")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("average tip rate by vendor (card payments):")
	fmt.Println(byVendor)
}

// The pivot example reproduces Figure 5 of the paper: the narrow SALES
// table pivoted into the wide table of MONTHs and the wide table of YEARs,
// and demonstrates that transposing one pivot yields the other — the
// plan-choice observation behind Figure 8.
package main

import (
	"fmt"
	"log"

	"repro/df"
	"repro/internal/algebra"
	"repro/internal/optimizer"
)

func main() {
	sales := df.MustNew(
		[]string{"Year", "Month", "Sales"},
		[][]any{
			{2001, "Jan", 100}, {2001, "Feb", 110}, {2001, "Mar", 120},
			{2002, "Jan", 150}, {2002, "Feb", 200}, {2002, "Mar", 250},
			{2003, "Jan", 300}, {2003, "Feb", 310},
		},
	)
	fmt.Println("narrow table (SALES):")
	fmt.Println(sales)

	// Pivot around Year: Year values become the column labels.
	wideMonths, err := sales.Pivot("Year", "Month", "Sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wide table of MONTHs (pivot around Year):")
	fmt.Println(wideMonths)
	fmt.Println("note the NULL at (Mar, 2003), exactly as in Figure 5.")

	// Pivot around Month: Month values become the column labels.
	wideYears, err := sales.Pivot("Month", "Year", "Sales")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wide table of YEARs (pivot around Month):")
	fmt.Println(wideYears)

	// Section 4.4: transposing one pivot is the pivot over the other
	// column.
	transposed, err := wideMonths.T()
	if err != nil {
		log.Fatal(err)
	}
	if transposed.Equal(wideYears) {
		fmt.Println("T(pivot around Year) == pivot around Month ✓")
	} else {
		fmt.Println("MISMATCH: transposed pivot differs!")
	}

	// The logical plan of Figure 6, rendered.
	months := []df.Value{df.Str("Jan"), df.Str("Feb"), df.Str("Mar")}
	plan := algebra.PivotPlan(&algebra.Source{DF: sales.Frame(), Name: "sales"},
		"Year", "Month", "Sales", months, false)
	fmt.Println("Figure 6 — logical pivot plan:")
	fmt.Print(algebra.Render(plan))

	// And the optimizer canceling a gratuitous double transpose around it.
	fmt.Println("optimizer at work on T(T(plan)):")
	fmt.Print(optimizer.Explain(
		&algebra.Transpose{Input: &algebra.Transpose{Input: plan}},
		optimizer.Default()))
}

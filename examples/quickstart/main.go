// The quickstart walks the end-to-end workflow of Figure 1 in the paper: an
// analyst exploring iPhone feature data. The paper's read_html/read_excel
// ingest steps become ReadCSVString (the web page and spreadsheet are not
// available offline; CSV exercises the same untyped-Σ*-ingest path).
//
//	R1  read the comparison chart            → ReadCSVString
//	C1  fix an anomalous value via iloc      → SetIloc
//	C2  matrix-like transpose                → T
//	C3  Yes/No column to binary via map      → MapCol
//	C4  read price/rating data               → ReadCSVString
//	A1  one-hot encode non-numeric features  → GetDummies
//	A2  join features with prices on index   → SetIndex + MergeOnIndex
//	A3  covariance between the features      → Cov
package main

import (
	"fmt"
	"log"

	"repro/df"
)

// productsCSV is the Figure 1 comparison chart as scraped: rows are
// features, columns are products — "oriented for human consumption", which
// is why step C2 transposes it.
const productsCSV = `feature,iPhone 11 Pro,iPhone 11 Pro Max,iPhone 11,iPhone XR
Display,5.8,6.5,6.1,6.1
Front Camera,120,12,12,7
Price,999,1099,699,599
Wireless Charging,Yes,Yes,Yes,No
Battery Life,18,20,17,16
`

const pricesCSV = `product,rating
iPhone 11 Pro,4.6
iPhone 11 Pro Max,4.7
iPhone 11,4.5
iPhone XR,4.4
`

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	// R1: ingest and immediately inspect — the trial-and-error loop.
	products, err := df.ReadCSVString(productsCSV)
	check(err)
	fmt.Println("R1 — products as ingested:")
	fmt.Println(products)

	// The first column holds feature names; promote it to row labels so
	// positional cells are pure data.
	products, err = products.SetIndex("feature")
	check(err)

	// C1: the Front Camera of the iPhone 11 Pro reads 120MP; fix the
	// anomalous value with an ordered point update.
	check(products.SetIloc(1, 0, df.Str("12")))
	fmt.Println("C1 — after fixing the 120→12 anomaly:")
	fmt.Println(products)

	// C2: transpose so rows are products and columns are features.
	products, err = products.T()
	check(err)
	fmt.Println("C2 — transposed to relational orientation:")
	fmt.Println(products)

	// C3: Wireless Charging Yes/No → 1/0 via a user-defined map.
	products, err = products.MapCol("Wireless Charging", "yes-to-binary", func(v df.Value) df.Value {
		if v.Str() == "Yes" {
			return df.Int(1)
		}
		return df.Int(0)
	})
	check(err)
	fmt.Println("C3 — Wireless Charging as binary:")
	fmt.Println(products)

	// C4: load price/rating information.
	prices, err := df.ReadCSVString(pricesCSV)
	check(err)
	prices, err = prices.SetIndex("product")
	check(err)
	fmt.Println("C4 — prices:")
	fmt.Println(prices)

	// A1: one-hot encode any remaining non-numeric features.
	oneHot, err := products.GetDummies()
	check(err)
	fmt.Println("A1 — one-hot encoded features:")
	fmt.Println(oneHot)
	fmt.Println("dtypes:", oneHot.Dtypes())

	// A2: join features with prices on the row labels.
	iphone, err := prices.MergeOnIndex(oneHot)
	check(err)
	fmt.Println("A2 — joined frame:")
	fmt.Println(iphone)

	// A3: covariance between the numeric features — possible because the
	// joined frame is a matrix dataframe after one-hot encoding.
	cov, err := iphone.Cov()
	check(err)
	fmt.Println("A3 — feature covariance:")
	fmt.Println(cov)
}

// The opportunistic example demonstrates the Section 6 user model: the same
// interactive session — ingest, filter, inspect the head, aggregate — run
// under eager, lazy, and opportunistic evaluation, showing where each mode
// spends its time, how head() is served from a prioritized prefix plan, and
// how materialized intermediates are reused across statements.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/df"
	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	frame := algebra.InduceFrame(workload.Taxi(workload.DefaultTaxiOptions(300_000)))
	data := df.FromFrame(frame)

	for _, mode := range []df.Mode{df.ModeEager, df.ModeLazy, df.ModeOpportunistic} {
		s := df.NewSession(df.NewModinEngine(), mode)
		sessionStart := time.Now()

		// Statement 1: bind the data.
		taxi := s.Bind("taxi", data)

		// Statement 2: filter to card payments.
		start := time.Now()
		paid := taxi.Apply("card-payments", func(in algebra.Node) algebra.Node {
			return &algebra.Selection{
				Input: in,
				Pred:  expr.ColEquals("payment_type", types.CategoryValue("card")),
				Desc:  "payment_type == card",
			}
		})
		issue := time.Since(start)

		// The user thinks; under opportunistic evaluation the system
		// computes in the background during this pause.
		time.Sleep(30 * time.Millisecond)

		// Statement 3: inspect the head — the prefix view the paper says
		// should be prioritized.
		start = time.Now()
		head, err := paid.Head(5)
		if err != nil {
			log.Fatal(err)
		}
		headLatency := time.Since(start)

		// Statement 4: aggregate, building on the filtered intermediate.
		start = time.Now()
		grouped := paid.Apply("by-vendor", func(in algebra.Node) algebra.Node {
			return &algebra.GroupBy{Input: in, Spec: expr.GroupBySpec{
				Keys: []string{"vendor_id"},
				Aggs: []expr.AggSpec{{Col: "total_amount", Agg: expr.AggMean, As: "avg_total"}},
			}}
		})
		result, err := grouped.Collect()
		if err != nil {
			log.Fatal(err)
		}
		collectLatency := time.Since(start)

		statements, full, partial, reuse, background := s.Stats()
		fmt.Printf("mode=%-14s issue=%-10v head=%-10v collect=%-10v total=%v\n",
			mode, issue, headLatency, collectLatency, time.Since(sessionStart))
		fmt.Printf("  statements=%d full-evals=%d partial-evals=%d reuse-hits=%d background=%d\n",
			statements, full, partial, reuse, background)
		if mode == df.ModeOpportunistic {
			fmt.Println("  head preview served during think time:")
			fmt.Println(head)
			fmt.Println("  aggregate:")
			fmt.Println(result)
		}
	}
	fmt.Println("shape check: eager pays at statement-issue time; lazy pays at head/collect;")
	fmt.Println("opportunistic returns control instantly and has results ready after think time.")
}
